"""The CI alert gate: prove the burn-rate alerting contract.

Four clauses, mirroring ``telemetry_gate.py``'s exit-code discipline
(0 ok, 1 contract violation, 3 budget blown):

1. **quiet on clean** -- a no-fault paper matrix run, replayed through
   the default alert engine, must fire *zero* alerts (and raise zero
   anomalies): an alerting layer that pages on a healthy run trains
   operators to ignore it.
2. **loud on chaos** -- the same matrix under the CI fault profile
   (``chaos_flaky.txt``) must fire at least one alert, at least one of
   them critical, and the firing alert's context must carry fault
   provenance (the per-kind injection counts) -- an alert that cannot
   say *what* faulted is a page without a lead.
3. **determinism** -- two same-seed chaos runs must replay to
   byte-identical incident timelines.  Timeline records carry logical
   ticks and sequence numbers only; any wall-clock leak shows up here
   as a ``cmp`` failure.
4. **evaluation overhead** -- replaying a synthetic 1,000-site fleet's
   wide events (4,000 records) through the burn-rate engine plus one
   anomaly-detector pass must finish under ``--eval-budget-seconds``:
   alert evaluation is a post-run fold, and it must stay a rounding
   error next to the matrix that produced the events.

With ``--fixture`` (default: the committed
``benchmarks/wide_chaos_flaky.jsonl``), the gate additionally replays
the committed stream through the ``feam alerts`` CLI and asserts the
exit-2-while-firing contract end to end.

Artifacts: ``alert_gate.json`` plus the two chaos timelines, uploaded
by the ``alert-gate`` CI job.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro import obs
from repro.core.engine import (
    EngineBinary,
    EvaluationEngine,
    anomaly_features,
)
from repro.obs import alerts as alerts_mod
from repro.obs import anomaly as anomaly_mod
from repro.obs.wide import WideEventSink
from repro.sites.generator import resolve_sites
from repro.sysmodel import faults as faults_mod
from repro.toolchain.compilers import Language
from repro.util.hashing import stable_uniform

SEED = 20130101

EXIT_OK = 0
EXIT_FAILURE = 1      # alerting contract violated
EXIT_REGRESSION = 3   # evaluation budget blown

_PROFILE = os.path.join(os.path.dirname(__file__), "chaos_flaky.txt")
_FIXTURE = os.path.join(os.path.dirname(__file__),
                        "wide_chaos_flaky.jsonl")


def _compile_binaries(sites, count: int):
    binaries = []
    pool = sites[:max(1, min(len(sites), count))]
    for index in range(count):
        site = pool[index % len(pool)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"gate-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
    return binaries


def _matrix_wide_events(profile_path: str | None) -> list[dict]:
    """One paper-sized matrix run's wide events, optionally faulted.

    Fresh sites/engine/plan per call so two same-seed invocations are
    fully independent -- exactly what the determinism clause needs.
    """
    sites = resolve_sites("paper", default_seed=SEED)
    binaries = _compile_binaries(sites, 4)
    sink = WideEventSink()
    if profile_path is None:
        with obs.capture():
            EvaluationEngine().evaluate_matrix(binaries, sites,
                                               wide_sink=sink)
        return sink.events()
    with open(profile_path, "r", encoding="utf-8") as handle:
        plan = faults_mod.FaultPlan.parse(
            handle.read(), seed=SEED,
            name=os.path.basename(profile_path))
    plan.arm(sites)
    try:
        with obs.capture():
            with faults_mod.injecting(plan):
                EvaluationEngine().evaluate_matrix(binaries, sites,
                                                   wide_sink=sink)
    finally:
        faults_mod.FaultPlan.disarm(sites)
    return sink.events()


def _replay(events, timeline_path: str | None = None):
    """Replay *events* through a default engine (plus anomaly pass)."""
    sinks = ([alerts_mod.JsonlSink(timeline_path)]
             if timeline_path else [])
    engine = alerts_mod.AlertEngine(sinks=sinks, emit_obs=False)
    alerts_mod.replay_wide(events, engine)
    anomalies = anomaly_mod.detect(events, anomaly_features, seed=SEED)
    engine.observe_anomalies(anomalies)
    engine.close()
    return engine, anomalies


def _synthetic_fleet_events(sites: int = 1000,
                            binaries: int = 4) -> list[dict]:
    """Deterministic wide events shaped like a 1k-site fleet run.

    The overhead clause times *alert evaluation*, not the matrix, so
    the events are synthesized (seeded, schema-shaped) rather than
    paid for with a real 4,000-cell evaluation on every CI run.
    """
    events = []
    for site_index in range(sites):
        group = f"group-{site_index % 40}"
        for binary_index in range(binaries):
            draw = stable_uniform("alert-gate-fleet", site_index,
                                  binary_index)
            faulted = draw < 0.05
            events.append({
                "schema": 1,
                "site": f"fleet-{site_index:04d}",
                "binary": f"app-{binary_index}",
                "content_group": group,
                "outcome": "unknown" if faulted else "no",
                "ready": False,
                "faulted": faulted,
                "sim_seconds": round(20.0 + 30.0 * draw, 6),
                "worker": 0,
                "attempts": 2 if faulted else 1,
                "retry_seconds": round(draw, 6) if faulted else 0.0,
                "fault_kind": "read-error" if faulted else None,
                "description_hit": site_index % 2 == 0,
                "discovery_hit": site_index % 3 == 0,
                "evaluation_hit": False,
                "det_mpi_library_compatibility": "pass",
            })
    return events


def run_gate(report_out: str, timeline_a: str, timeline_b: str,
             eval_budget_seconds: float, fixture: str | None) -> int:
    failures: list[str] = []

    # 1. Quiet on clean.
    clean_engine, clean_anomalies = _replay(
        _matrix_wide_events(None))
    if clean_engine.firing:
        failures.append(
            f"clean: {len(clean_engine.firing)} alert(s) firing on a "
            f"no-fault paper matrix: "
            f"{[a['alert'] for a in clean_engine.firing]}")
    if clean_anomalies:
        failures.append(f"clean: anomaly detector raised "
                        f"{len(clean_anomalies)} on a no-fault run")

    # 2. Loud on chaos (+ 3. determinism: two same-seed runs).
    for path in (timeline_a, timeline_b):
        if os.path.exists(path):
            os.unlink(path)
    chaos_engine, _ = _replay(_matrix_wide_events(_PROFILE),
                              timeline_path=timeline_a)
    rerun_engine, _ = _replay(_matrix_wide_events(_PROFILE),
                              timeline_path=timeline_b)
    firing = chaos_engine.firing
    if not firing:
        failures.append("chaos: no alert firing under the CI fault "
                        "profile")
    if not any(a["severity"] == "critical" for a in firing):
        failures.append("chaos: no critical alert firing under the CI "
                        "fault profile")
    if not any(a["context"].get("fault_kinds") for a in firing):
        failures.append("chaos: firing alerts carry no fault "
                        "provenance (context.fault_kinds)")

    with open(timeline_a, "rb") as handle:
        bytes_a = handle.read()
    with open(timeline_b, "rb") as handle:
        bytes_b = handle.read()
    if bytes_a != bytes_b:
        failures.append(f"determinism: same-seed chaos timelines "
                        f"differ ({timeline_a} vs {timeline_b})")
    if not bytes_a:
        failures.append("determinism: chaos timeline is empty")

    # 5. The committed fixture drives the CLI exit-2 contract.
    fixture_exit = None
    if fixture and os.path.exists(fixture):
        from repro.__main__ import feam_main
        import contextlib
        import io
        stdout, stderr = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(stdout), \
                contextlib.redirect_stderr(stderr):
            fixture_exit = feam_main(["alerts", "--replay", fixture])
        if fixture_exit != 2:
            failures.append(f"fixture: feam alerts --replay {fixture} "
                            f"exited {fixture_exit}, want 2 (firing)")
        if "faults:" not in stdout.getvalue():
            failures.append("fixture: report shows no fault "
                            "provenance line")
    elif fixture:
        failures.append(f"fixture: {fixture} is missing")

    # 4. Evaluation overhead on a synthetic 1k-site fleet.
    fleet_events = _synthetic_fleet_events()
    start = time.perf_counter()
    fleet_engine, fleet_anomalies = _replay(fleet_events)
    eval_seconds = time.perf_counter() - start
    blown = eval_seconds > eval_budget_seconds

    payload = {
        "seed": SEED,
        "clean": {"firing": len(clean_engine.firing),
                  "transitions": len(clean_engine.transitions),
                  "anomalies": len(clean_anomalies)},
        "chaos": {"firing": len(firing),
                  "critical": sum(1 for a in firing
                                  if a["severity"] == "critical"),
                  "transitions": len(chaos_engine.transitions),
                  "rerun_transitions": len(rerun_engine.transitions),
                  "timeline_bytes": len(bytes_a),
                  "timelines_identical": bytes_a == bytes_b},
        "fixture": {"path": fixture, "exit": fixture_exit},
        "fleet": {"events": len(fleet_events),
                  "ticks": fleet_engine.tick,
                  "anomalies": len(fleet_anomalies),
                  "eval_seconds": round(eval_seconds, 4),
                  "eval_budget_seconds": eval_budget_seconds},
        "failures": failures,
    }
    with open(report_out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"alert gate: clean fired {len(clean_engine.firing)}, chaos "
          f"fired {len(firing)} "
          f"({payload['chaos']['critical']} critical), timelines "
          f"{'identical' if bytes_a == bytes_b else 'DIFFER'}, fleet "
          f"eval {eval_seconds:.3f}s (budget "
          f"{eval_budget_seconds:.2f}s)  -> {report_out}")
    for failure in failures:
        print(f"ALERT GATE: {failure}")
    if failures:
        return EXIT_FAILURE
    if blown:
        print(f"ALERT GATE: fleet alert evaluation took "
              f"{eval_seconds:.3f}s > budget "
              f"{eval_budget_seconds:.2f}s")
        return EXIT_REGRESSION
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate the burn-rate alerting contract.")
    parser.add_argument("--report-out", default="alert_gate.json",
                        help="gate report artifact path")
    parser.add_argument("--timeline-a", default="alert_timeline_a.jsonl",
                        help="first chaos timeline artifact path")
    parser.add_argument("--timeline-b", default="alert_timeline_b.jsonl",
                        help="same-seed rerun timeline artifact path")
    parser.add_argument("--eval-budget-seconds", type=float, default=1.0,
                        help="max wall seconds for alert + anomaly "
                             "evaluation over the synthetic 1k-site "
                             "fleet (default: 1.0)")
    parser.add_argument("--fixture", default=_FIXTURE,
                        help="committed flaky-chaos wide events for "
                             "the CLI exit-2 check ('' skips)")
    args = parser.parse_args(argv)
    return run_gate(args.report_out, args.timeline_a, args.timeline_b,
                    args.eval_budget_seconds, args.fixture or None)


if __name__ == "__main__":
    raise SystemExit(main())
