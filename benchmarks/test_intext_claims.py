"""Section VI.C in-text measurements.

Regenerates the phase-duration, bundle-size and failure-breakdown numbers
the paper reports in prose, and benchmarks the underlying source phase.
"""

from repro.evaluation.metrics import failure_breakdown, missing_library_share
from repro.evaluation.tables import render_intext


def test_intext_render_and_claims(experiment_result):
    print()
    print(render_intext(experiment_result))
    # "less than five minutes"
    assert experiment_result.max_source_phase_seconds < 300
    assert experiment_result.max_target_phase_seconds < 300
    # "more than half were missing shared libraries"
    assert missing_library_share(experiment_result.records) > 0.5
    # bundle sizes in the tens of MB, like the paper's 45 MB average
    sizes = experiment_result.bundle_bytes_by_site
    assert all(10e6 < s < 100e6 for s in sizes.values())


def test_failure_breakdown_bench(benchmark, experiment_result):
    breakdown = benchmark(failure_breakdown, experiment_result.records)
    assert breakdown["missing-shared-library"] > 0


def test_source_phase_bench(benchmark, paper_sites):
    """Latency of a full source phase (describe + copy + hello compiles)."""
    from repro.core import Feam
    from repro.toolchain.compilers import Language

    forge = next(s for s in paper_sites if s.name == "forge")
    stack = forge.find_stack("openmpi-1.4-intel")
    app = forge.compile_mpi_program("srcbench", Language.FORTRAN, stack)
    forge.machine.fs.write("/home/user/srcbench", app.image, mode=0o755)
    feam = Feam()
    env = forge.env_with_stack(stack)

    bundle = benchmark(feam.run_source_phase, forge,
                       "/home/user/srcbench", env=env)
    assert bundle.copied_count > 5
    print(f"\nbundle: {bundle.copied_count} copies, "
          f"{bundle.copy_bytes / 1e6:.1f} MB")
