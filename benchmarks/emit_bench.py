"""Emit ``BENCH_matrix.json``: cold vs warm batch-evaluation timings.

Run as a script (``make bench-matrix`` or
``PYTHONPATH=src python benchmarks/emit_bench.py [out.json]``).  It times
:meth:`EvaluationEngine.evaluate_matrix` over the paper's five sites

* **cold** -- fresh engine, every cache layer empty, first matrix of
  the process (so it also pays one-time interpreter/import warmup);
* **warm** -- the same engine again, every cell served from cache;
* **reference** -- a second fresh engine, untraced, now that the
  process is warm: the fair baseline for the tracing overhead;
* **traced** -- a fresh engine under an installed observability
  collector, compared against *reference* (an equally-warmed engine).
  Comparing traced against *cold* -- as this script once did -- mixes
  the one-time process warmup into the denominator and reports a
  nonsensical negative overhead.

With ``--fleet SPEC`` it instead benchmarks a generated fleet
(:mod:`repro.sites.generator`), reporting build/evaluation wall time,
cells per second and the mean per-cell cost in microseconds, writing
``BENCH_fleet.json`` and appending a ``"kind": "fleet"`` line to the
history.  ``--budget-seconds`` turns that into a gate: exit 3 when the
evaluation blows the budget, exit 1 when any cell degraded in a run
with no fault plan installed.

The JSON it writes is consumed by CI (uploaded as an artifact alongside
a sample trace), by ``benchmarks/check_regression.py`` (gated against
the committed ``benchmarks/BENCH_baseline.json``) and by humans
eyeballing cache efficacy.  Each run also appends one timestamped line
to the tracked ``benchmarks/BENCH_history.jsonl``, so the perf
trajectory is visible across PRs instead of evaporating with the
working tree, and records a ``"kind": "bench"`` / ``"fleet-bench"``
manifest into the run ledger (``feam runs`` / ``feam drift`` consume
it; ``--no-ledger`` opts out, ``--ledger DIR`` redirects it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.core.engine import EngineBinary, EvaluationEngine
from repro.obs import ledger as ledger_mod
from repro.sites.catalog import build_paper_sites
from repro.sites.generator import describe_fleet, resolve_sites
from repro.toolchain.compilers import Language

SEED = 20130101
BINARIES = 4

EXIT_OK = 0
EXIT_FAILURE = 1      # degraded cells in a no-fault run
EXIT_REGRESSION = 3   # fleet wall-time budget blown


def _build_inputs(seed: int = SEED, count: int = BINARIES):
    sites = build_paper_sites(seed, cached=False)
    binaries = _compile_binaries(sites, count)
    return sites, binaries


def _compile_binaries(sites, count: int):
    binaries = []
    pool = sites[:max(1, min(len(sites), count))]
    for index in range(count):
        site = pool[index % len(pool)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"bench-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
    return binaries


def append_history(payload: dict, history_path: str) -> dict:
    """Append one timestamped trajectory line to *history_path*.

    The entry keeps the comparable shape numbers (cells, speedup,
    overhead) and the raw timings; exact per-run wall seconds are
    machine-dependent, which is why the regression gate compares
    against the committed baseline with a tolerance instead of against
    history neighbours.
    """
    entry = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": payload["seed"],
        "cells": payload["cells"],
        "cold_seconds": payload["cold_seconds"],
        "warm_seconds": payload["warm_seconds"],
        "warm_speedup": payload["warm_speedup"],
        "traced_seconds": payload["traced_seconds"],
        "traced_overhead": payload["traced_overhead"],
        "trace_spans": payload["trace_spans"],
    }
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def append_fleet_history(payload: dict, history_path: str) -> dict:
    """Append one ``"kind": "fleet"`` trajectory line to *history_path*."""
    entry = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "kind": "fleet",
        "spec": payload["spec"],
        "sites": payload["sites"],
        "cells": payload["cells"],
        "build_seconds": payload["build_seconds"],
        "eval_seconds": payload["eval_seconds"],
        "cells_per_second": payload["cells_per_second"],
        "cell_microseconds": payload["cell_microseconds"],
        "steals": payload["steals"],
    }
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def record_ledger(payload: dict, kind: str,
                  ledger_dir: str | None = None) -> dict | None:
    """Record one bench run into the run ledger (best effort).

    The flat JSON history files stay for back-compat; the ledger entry
    is what ``feam runs`` / ``feam drift`` consume.  A failure to write
    must never fail the benchmark itself.
    """
    directory = (ledger_dir or os.environ.get("FEAM_LEDGER_DIR")
                 or ledger_mod.DEFAULT_DIR)
    manifest = {
        "kind": kind,
        "seed": payload.get("seed"),
        "sites_spec": payload.get("spec"),
        "bench": {key: value for key, value in payload.items()
                  if key not in ("kind", "seed", "spec")},
    }
    try:
        written = ledger_mod.RunLedger(directory).record(manifest)
    except OSError as exc:
        print(f"warning: could not record bench run in ledger "
              f"{directory!r}: {exc}", file=sys.stderr)
        return None
    print(f"ledger: run {written['run_id']} ({kind}) recorded",
          file=sys.stderr)
    return written


def _timed_matrix(engine, binaries, sites) -> float:
    start = time.perf_counter()
    engine.evaluate_matrix(binaries, sites)
    return time.perf_counter() - start


def run(out_path: str = "BENCH_matrix.json",
        history_path: str | None = None,
        ledger_dir: str | None = None,
        ledger: bool = True) -> dict:
    sites, binaries = _build_inputs()

    engine = EvaluationEngine()
    start = time.perf_counter()
    cold_result = engine.evaluate_matrix(binaries, sites)
    cold = time.perf_counter() - start

    # Best of three: the warm path is a few milliseconds, so a single
    # sample is too noisy for the ±25% regression gate.
    warm = min(_timed_matrix(engine, binaries, sites) for _ in range(3))
    stats = engine.stats.snapshot()

    # Tracing overhead needs an apples-to-apples pair: fresh engines,
    # all after process warmup, untraced (reference) vs under the
    # collector.  Best of two on each side to damp scheduler jitter.
    reference = min(_timed_matrix(EvaluationEngine(), binaries, sites)
                    for _ in range(2))
    traced_samples = []
    for _ in range(2):
        with obs.capture() as collector:
            start = time.perf_counter()
            EvaluationEngine().evaluate_matrix(binaries, sites)
            traced_samples.append(time.perf_counter() - start)
    traced = min(traced_samples)

    # The benchmark runs with no fault plan installed, so any injected
    # fault or retry means the resilience path fired where it must not:
    # the warm timings would not be comparable.  check_regression.py
    # gates on these staying zero.
    counters = collector.metrics.to_dict()["counters"]
    payload = {
        "seed": SEED,
        "binaries": len(binaries),
        "sites": len(sites),
        "cells": len(cold_result.cells),
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 1) if warm > 0 else None,
        "reference_seconds": round(reference, 4),
        "traced_seconds": round(traced, 4),
        "traced_overhead": round(traced / reference - 1.0, 4)
        if reference > 0 else None,
        "trace_spans": len(collector.spans),
        "faults_injected": counters.get("resilience.faults.injected", 0),
        "retries": counters.get("resilience.retries.total", 0),
        "cache": {
            "description_hits": stats.description_hits,
            "description_misses": stats.description_misses,
            "discovery_hits": stats.discovery_hits,
            "discovery_misses": stats.discovery_misses,
            "evaluation_hits": stats.evaluation_hits,
            "evaluation_misses": stats.evaluation_misses,
        },
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if history_path:
        append_history(payload, history_path)
    if ledger:
        record_ledger(payload, "bench", ledger_dir)
    print(f"cold {cold:.3f}s  warm {warm:.3f}s  "
          f"traced {traced:.3f}s (vs reference {reference:.3f}s)"
          f"  -> {out_path}"
          + (f" (+ {history_path})" if history_path else ""))
    return payload


def run_fleet(spec: str, out_path: str = "BENCH_fleet.json",
              history_path: str | None = None,
              count: int = BINARIES,
              ledger_dir: str | None = None,
              ledger: bool = True) -> dict:
    """Benchmark a generated fleet: build time, eval time, cells/sec."""
    start = time.perf_counter()
    sites = resolve_sites(spec, default_seed=SEED)
    build = time.perf_counter() - start
    print(f"{describe_fleet(sites)} built in {build:.1f}s",
          file=sys.stderr)
    binaries = _compile_binaries(sites, count)

    engine = EvaluationEngine()
    with obs.capture() as collector:
        start = time.perf_counter()
        result = engine.evaluate_matrix(binaries, sites)
        elapsed = time.perf_counter() - start

    cells = len(result.cells)
    stats = engine.stats.snapshot()
    gauges = collector.metrics.to_dict()["gauges"]
    degraded = sum(1 for cell in result.cells if cell.faulted)
    payload = {
        "kind": "fleet",
        "spec": spec,
        "seed": SEED,
        "binaries": len(binaries),
        "sites": len(sites),
        "cells": cells,
        "build_seconds": round(build, 4),
        "eval_seconds": round(elapsed, 4),
        "cells_per_second": round(cells / elapsed, 1) if elapsed else None,
        "cell_microseconds": round(1e6 * elapsed / cells, 1)
        if cells else None,
        "steals": int(gauges.get("engine.matrix.steals", 0)),
        "worker_utilization": gauges.get(
            "engine.matrix.worker_utilization"),
        "degraded_cells": degraded,
        "quarantined_sites": len(result.quarantined),
        "cache": {
            "description_hits": stats.description_hits,
            "description_misses": stats.description_misses,
            "discovery_hits": stats.discovery_hits,
            "discovery_misses": stats.discovery_misses,
            "evaluation_hits": stats.evaluation_hits,
            "evaluation_misses": stats.evaluation_misses,
        },
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if history_path:
        append_fleet_history(payload, history_path)
    if ledger:
        record_ledger(payload, "fleet-bench", ledger_dir)
    print(f"fleet {spec}: {cells} cells in {elapsed:.1f}s "
          f"({payload['cells_per_second']} cells/s, "
          f"{payload['cell_microseconds']} us/cell, "
          f"{payload['steals']} steals)  -> {out_path}"
          + (f" (+ {history_path})" if history_path else ""))
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Emit batch-evaluation benchmark JSON.")
    parser.add_argument("out", nargs="?", default=None,
                        help="output JSON path (default: "
                             "BENCH_matrix.json, or BENCH_fleet.json "
                             "with --fleet)")
    parser.add_argument("history", nargs="?", default=None,
                        help="also append a line to this "
                             "BENCH_history.jsonl")
    parser.add_argument("--fleet", metavar="SPEC", default=None,
                        help="benchmark a generated fleet instead, e.g. "
                             "'fleet:n=1000,seed=7'")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        help="fleet gate: exit 3 when evaluation wall "
                             "time exceeds this budget")
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="run-ledger directory (default: "
                             "$FEAM_LEDGER_DIR or .feam/runs)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="skip recording this run in the ledger")
    args = parser.parse_args(argv)

    if args.fleet:
        payload = run_fleet(args.fleet,
                            args.out or "BENCH_fleet.json",
                            args.history,
                            ledger_dir=args.ledger,
                            ledger=not args.no_ledger)
        if payload["degraded_cells"]:
            print(f"FLEET GATE: {payload['degraded_cells']} degraded "
                  "cell(s) in a run with no fault plan installed",
                  file=sys.stderr)
            return EXIT_FAILURE
        if (args.budget_seconds is not None
                and payload["eval_seconds"] > args.budget_seconds):
            print(f"FLEET GATE: evaluation took "
                  f"{payload['eval_seconds']:.1f}s "
                  f"> budget {args.budget_seconds:.1f}s", file=sys.stderr)
            return EXIT_REGRESSION
        return EXIT_OK
    run(args.out or "BENCH_matrix.json", args.history,
        ledger_dir=args.ledger, ledger=not args.no_ledger)
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
