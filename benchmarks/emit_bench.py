"""Emit ``BENCH_matrix.json``: cold vs warm batch-evaluation timings.

Run as a script (``make bench-matrix`` or
``PYTHONPATH=src python benchmarks/emit_bench.py [out.json]``).  It times
:meth:`EvaluationEngine.evaluate_matrix` over the paper's five sites

* **cold** -- fresh engine, every cache layer empty;
* **warm** -- the same engine again, every cell served from cache;
* **traced** -- cold again under an installed observability collector,
  to measure the collection overhead against the cold (no-collector)
  baseline.

The JSON it writes is consumed by CI (uploaded as an artifact alongside
a sample trace), by ``benchmarks/check_regression.py`` (gated against
the committed ``benchmarks/BENCH_baseline.json``) and by humans
eyeballing cache efficacy.  Each run also appends one timestamped line
to the tracked ``benchmarks/BENCH_history.jsonl``, so the perf
trajectory is visible across PRs instead of evaporating with the
working tree.
"""

from __future__ import annotations

import json
import sys
import time

from repro import obs
from repro.core.engine import EngineBinary, EvaluationEngine
from repro.sites.catalog import build_paper_sites
from repro.toolchain.compilers import Language

SEED = 20130101
BINARIES = 4


def _build_inputs(seed: int = SEED, count: int = BINARIES):
    sites = build_paper_sites(seed, cached=False)
    binaries = []
    for index in range(count):
        site = sites[index % len(sites)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"bench-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
    return sites, binaries


def append_history(payload: dict, history_path: str) -> dict:
    """Append one timestamped trajectory line to *history_path*.

    The entry keeps the comparable shape numbers (cells, speedup,
    overhead) and the raw timings; exact per-run wall seconds are
    machine-dependent, which is why the regression gate compares
    against the committed baseline with a tolerance instead of against
    history neighbours.
    """
    entry = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": payload["seed"],
        "cells": payload["cells"],
        "cold_seconds": payload["cold_seconds"],
        "warm_seconds": payload["warm_seconds"],
        "warm_speedup": payload["warm_speedup"],
        "traced_seconds": payload["traced_seconds"],
        "traced_overhead": payload["traced_overhead"],
        "trace_spans": payload["trace_spans"],
    }
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def _timed_matrix(engine, binaries, sites) -> float:
    start = time.perf_counter()
    engine.evaluate_matrix(binaries, sites)
    return time.perf_counter() - start


def run(out_path: str = "BENCH_matrix.json",
        history_path: str | None = None) -> dict:
    sites, binaries = _build_inputs()

    engine = EvaluationEngine()
    start = time.perf_counter()
    cold_result = engine.evaluate_matrix(binaries, sites)
    cold = time.perf_counter() - start

    # Best of three: the warm path is a few milliseconds, so a single
    # sample is too noisy for the ±25% regression gate.
    warm = min(_timed_matrix(engine, binaries, sites) for _ in range(3))
    stats = engine.stats.snapshot()

    traced_engine = EvaluationEngine()
    with obs.capture() as collector:
        start = time.perf_counter()
        traced_engine.evaluate_matrix(binaries, sites)
        traced = time.perf_counter() - start

    # The benchmark runs with no fault plan installed, so any injected
    # fault or retry means the resilience path fired where it must not:
    # the warm timings would not be comparable.  check_regression.py
    # gates on these staying zero.
    counters = collector.metrics.to_dict()["counters"]
    payload = {
        "seed": SEED,
        "binaries": len(binaries),
        "sites": len(sites),
        "cells": len(cold_result.cells),
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 1) if warm > 0 else None,
        "traced_seconds": round(traced, 4),
        "traced_overhead": round(traced / cold - 1.0, 4) if cold > 0
        else None,
        "trace_spans": len(collector.spans),
        "faults_injected": counters.get("resilience.faults.injected", 0),
        "retries": counters.get("resilience.retries.total", 0),
        "cache": {
            "description_hits": stats.description_hits,
            "description_misses": stats.description_misses,
            "discovery_hits": stats.discovery_hits,
            "discovery_misses": stats.discovery_misses,
            "evaluation_hits": stats.evaluation_hits,
            "evaluation_misses": stats.evaluation_misses,
        },
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if history_path:
        append_history(payload, history_path)
    print(f"cold {cold:.3f}s  warm {warm:.3f}s  "
          f"traced {traced:.3f}s  -> {out_path}"
          + (f" (+ {history_path})" if history_path else ""))
    return payload


if __name__ == "__main__":
    run(sys.argv[1] if len(sys.argv) > 1 else "BENCH_matrix.json",
        sys.argv[2] if len(sys.argv) > 2 else None)
