"""Table III: accuracy of the prediction model.

Prints the regenerated table (measured vs paper) and benchmarks the
accuracy computation plus a single live FEAM target-phase prediction.
"""

from repro.corpus.benchmarks import Suite
from repro.evaluation.metrics import accuracy_table
from repro.evaluation.tables import PAPER_TABLE3, render_table3


def test_table3_render_and_shape(experiment_result):
    print()
    print(render_table3(experiment_result))
    acc = accuracy_table(experiment_result.records)
    for suite in Suite:
        assert acc[suite]["basic"] > 0.90
        assert acc[suite]["extended"] >= acc[suite]["basic"]
        # Within a few points of the paper's published accuracy.
        assert abs(acc[suite]["basic"] - PAPER_TABLE3[suite]["basic"]) < 0.06
        assert abs(acc[suite]["extended"]
                   - PAPER_TABLE3[suite]["extended"]) < 0.06


def test_accuracy_computation_bench(benchmark, experiment_result):
    records = experiment_result.records
    table = benchmark(accuracy_table, records)
    assert set(table) == set(Suite)


def test_single_prediction_bench(benchmark, paper_sites):
    """Latency of one basic target-phase prediction (binary present)."""
    from repro.core import Feam
    from repro.toolchain.compilers import Language

    by_name = {s.name: s for s in paper_sites}
    fir, india = by_name["fir"], by_name["india"]
    stack = fir.find_stack("openmpi-1.4-gnu")
    app = fir.compile_mpi_program("bench-app", Language.FORTRAN, stack)
    india.machine.fs.write("/home/user/bench-app", app.image, mode=0o755)
    feam = Feam()
    # Warm the discovery cache (the paper's EDC also runs once per site).
    feam.run_target_phase(india, binary_path="/home/user/bench-app",
                          staging_tag="warm")

    report = benchmark(
        feam.run_target_phase, india,
        binary_path="/home/user/bench-app", staging_tag="bench")
    assert report.prediction is not None
