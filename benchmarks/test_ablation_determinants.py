"""Determinant ablation (DESIGN.md design-choice study).

How much does each of the four determinants contribute to prediction
accuracy?  Replays the recorded determinant outcomes with subsets of the
model enabled.
"""

from repro.core.prediction import Determinant
from repro.evaluation.ablation import (
    determinant_ablation,
    render_determinant_ablation,
)


def test_determinant_ablation_render(experiment_result):
    rows = determinant_ablation(experiment_result.records, mode="basic")
    print()
    print(render_determinant_ablation(rows))
    by_subset = {row.enabled: row for row in rows}
    full = by_subset[tuple(d.value for d in Determinant)]
    nothing = by_subset[()]
    # The full model beats the no-model baseline...
    assert full.accuracy > nothing.accuracy
    # ...and every leave-one-out model is at most as accurate as the full
    # model (each determinant contributes or is neutral, never harmful).
    for excluded in Determinant:
        subset = tuple(d.value for d in Determinant if d is not excluded)
        assert by_subset[subset].accuracy <= full.accuracy + 1e-9


def test_shared_libraries_is_the_strongest_single_determinant(
        experiment_result):
    """Missing shared libraries dominate failures (Section VI.C), so the
    shared-library determinant alone should beat each other single
    determinant."""
    rows = determinant_ablation(experiment_result.records, mode="basic")
    singles = {row.enabled[0]: row.accuracy
               for row in rows if len(row.enabled) == 1}
    shared = singles[Determinant.SHARED_LIBRARIES.value]
    for name, accuracy in singles.items():
        if name != Determinant.SHARED_LIBRARIES.value:
            assert shared >= accuracy, (name, singles)


def test_ablation_computation_bench(benchmark, experiment_result):
    rows = benchmark(determinant_ablation, experiment_result.records,
                     "basic")
    assert len(rows) == 1 + 4 + 4 + 1  # full, leave-one-out, singles, none
