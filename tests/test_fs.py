"""Virtual filesystem tests."""

import pytest

from repro.sysmodel.fs import FsError, VirtualFilesystem


@pytest.fixture
def fs():
    return VirtualFilesystem()


def test_write_and_read(fs):
    fs.write("/a/b/c.txt", b"hello")
    assert fs.read("/a/b/c.txt") == b"hello"
    assert fs.read_text("/a/b/c.txt") == "hello"


def test_write_creates_parents(fs):
    fs.write("/deep/nested/dir/file", b"x")
    assert fs.is_dir("/deep/nested/dir")
    assert fs.is_file("/deep/nested/dir/file")


def test_missing_file_raises(fs):
    with pytest.raises(FsError):
        fs.read("/nope")


def test_relative_path_rejected(fs):
    with pytest.raises(FsError):
        fs.write("relative/path", b"x")


def test_exists_and_types(fs):
    fs.write("/f", b"")
    fs.makedirs("/d")
    assert fs.exists("/f") and fs.is_file("/f") and not fs.is_dir("/f")
    assert fs.exists("/d") and fs.is_dir("/d") and not fs.is_file("/d")
    assert not fs.exists("/missing")


def test_overwrite_replaces_content(fs):
    fs.write("/f", b"one")
    fs.write("/f", b"two")
    assert fs.read("/f") == b"two"


def test_listdir_sorted(fs):
    fs.write("/d/z", b"")
    fs.write("/d/a", b"")
    fs.write("/d/m", b"")
    assert fs.listdir("/d") == ["a", "m", "z"]


def test_listdir_of_file_raises(fs):
    fs.write("/f", b"")
    with pytest.raises(FsError):
        fs.listdir("/f")


def test_symlink_resolution(fs):
    fs.write("/lib/libfoo.so.1.2.3", b"ELF")
    fs.symlink("/lib/libfoo.so.1", "libfoo.so.1.2.3")
    assert fs.is_symlink("/lib/libfoo.so.1")
    assert fs.read("/lib/libfoo.so.1") == b"ELF"
    assert fs.realpath("/lib/libfoo.so.1") == "/lib/libfoo.so.1.2.3"


def test_absolute_symlink_target(fs):
    fs.write("/real/file", b"data")
    fs.symlink("/alias", "/real/file")
    assert fs.read("/alias") == b"data"


def test_symlink_chain(fs):
    fs.write("/a", b"end")
    fs.symlink("/b", "/a")
    fs.symlink("/c", "/b")
    assert fs.read("/c") == b"end"
    assert fs.realpath("/c") == "/a"


def test_symlink_loop_detected(fs):
    fs.symlink("/x", "/y")
    fs.symlink("/y", "/x")
    with pytest.raises(FsError):
        fs.read("/x")
    with pytest.raises(FsError):
        fs.realpath("/x")


def test_dangling_symlink(fs):
    fs.symlink("/dangling", "/nowhere")
    assert fs.lexists("/dangling")
    assert not fs.exists("/dangling")
    assert not fs.is_file("/dangling")


def test_readlink(fs):
    fs.symlink("/link", "target")
    assert fs.readlink("/link") == "target"
    fs.write("/plain", b"")
    with pytest.raises(FsError):
        fs.readlink("/plain")


def test_mode_and_executable(fs):
    fs.write("/bin/tool", b"#!", mode=0o755)
    assert fs.is_executable("/bin/tool")
    fs.write("/doc.txt", b"", mode=0o644)
    assert not fs.is_executable("/doc.txt")
    fs.chmod("/doc.txt", 0o755)
    assert fs.is_executable("/doc.txt")


def test_size(fs):
    fs.write("/f", b"12345")
    assert fs.size("/f") == 5


def test_lazy_file(fs):
    calls = []

    def provider():
        calls.append(1)
        return b"generated!"

    fs.write_lazy("/lazy", provider, size=10)
    assert fs.size("/lazy") == 10
    assert not calls  # nothing generated yet
    assert fs.read("/lazy") == b"generated!"
    assert fs.read("/lazy") == b"generated!"
    assert len(calls) == 2  # regenerated per read, never cached


def test_lazy_size_mismatch_raises(fs):
    fs.write_lazy("/bad", lambda: b"short", size=100)
    with pytest.raises(FsError):
        fs.read("/bad")


def test_remove(fs):
    fs.write("/f", b"")
    fs.remove("/f")
    assert not fs.exists("/f")
    with pytest.raises(FsError):
        fs.remove("/f")


def test_remove_directory_rejected(fs):
    fs.makedirs("/d")
    with pytest.raises(FsError):
        fs.remove("/d")


def test_copy_file_shares_provider(fs):
    fs.write_lazy("/src", lambda: b"abc", size=3)
    fs.copy_file("/src", "/dst/copy")
    assert fs.read("/dst/copy") == b"abc"


def test_install_from_other_fs(fs):
    other = VirtualFilesystem()
    other.write("/bin/app", b"binary", mode=0o755)
    fs.install_from(other, "/bin/app", "/migrated/app")
    assert fs.read("/migrated/app") == b"binary"
    assert fs.is_executable("/migrated/app")


def test_walk(fs):
    fs.write("/top/a/x", b"")
    fs.write("/top/a/y", b"")
    fs.write("/top/b", b"")
    walked = list(fs.walk("/top"))
    assert walked[0] == ("/top", ["a"], ["b"])
    assert walked[1] == ("/top/a", [], ["x", "y"])


def test_walk_missing_top_is_empty(fs):
    assert list(fs.walk("/missing")) == []


def test_find_files(fs):
    fs.write("/u/lib/libm.so.6", b"")
    fs.write("/u/lib64/libm.so.6", b"")
    fs.write("/u/lib/other", b"")
    hits = list(fs.find_files("/u", lambda n: n == "libm.so.6"))
    assert hits == ["/u/lib/libm.so.6", "/u/lib64/libm.so.6"]


def test_makedirs_idempotent(fs):
    fs.makedirs("/a/b")
    fs.makedirs("/a/b")
    assert fs.is_dir("/a/b")


def test_makedirs_over_file_rejected(fs):
    fs.write("/a", b"")
    with pytest.raises(FsError):
        fs.makedirs("/a/b")


def test_dot_and_dotdot_normalised(fs):
    fs.write("/a/b/file", b"x")
    assert fs.read("/a/./b/../b/file") == b"x"
