"""Login/compute-node divergence: a documented FEAM blind spot.

FEAM's discovery runs on the login node; when compute-node images have
drifted (a library was removed or never installed there), FEAM predicts
ready and the job still dies.  The paper's model cannot see this -- its
discovery has no access to compute-node filesystems -- and neither can
ours, faithfully.
"""

import pytest

from repro.core import Feam
from repro.sysmodel.errors import FailureKind
from repro.toolchain.compilers import Language


@pytest.fixture
def diverged(make_site):
    """A site whose compute nodes lost the InfiniBand userspace library
    and the zlib soname symlink (realistic image-drift casualties)."""
    return make_site(
        "diverged",
        compute_node_missing=("/usr/lib64/libz.so.1",
                              "/usr/lib64/libz.so.1.2.3"))


def test_default_sites_share_one_machine(mini_site):
    assert mini_site.compute_machine is mini_site.machine


def test_diverged_site_has_two_machines(diverged):
    assert diverged.compute_machine is not diverged.machine
    assert diverged.machine.fs.is_file("/usr/lib64/libz.so.1.2.3")
    assert not diverged.compute_machine.fs.lexists("/usr/lib64/libz.so.1")


def test_compute_machine_otherwise_identical(diverged):
    login, compute = diverged.machine.fs, diverged.compute_machine.fs
    assert compute.is_file("/opt/openmpi-1.4-gnu/lib/libmpi.so.0.1.4")
    assert login.read("/lib64/libc-2.5.so") == \
        compute.read("/lib64/libc-2.5.so")


def test_feam_false_ready_on_divergence(diverged, make_site):
    """The blind spot, end to end: FEAM says ready, the job dies."""
    donor = make_site("div-donor")
    stack = donor.find_stack("openmpi-1.4-gnu")
    from repro.toolchain.compilers import RuntimeDep
    app = donor.compile_mpi_program(
        "zapp", Language.C, stack,
        extra_deps=(RuntimeDep("libz.so.1"),))
    diverged.machine.fs.write("/home/user/zapp", app.image, mode=0o755)

    report = Feam().run_target_phase(
        diverged, binary_path="/home/user/zapp", staging_tag="div")
    assert report.ready  # login-node view: libz is right there

    target_stack = diverged.find_stack("openmpi-1.4-gnu")
    result = diverged.run_with_retries(
        "zapp", app.image, target_stack,
        env=report.run_environment or
        diverged.env_with_stack(target_stack))
    assert not result.ok
    assert result.failure.kind is FailureKind.MISSING_LIBRARY
    assert "libz.so.1" in result.failure.detail


def test_unaffected_binaries_still_run(diverged, make_site):
    donor = make_site("div-donor2")
    stack = donor.find_stack("openmpi-1.4-gnu")
    app = donor.compile_mpi_program("plain", Language.C, stack)
    target_stack = diverged.find_stack("openmpi-1.4-gnu")
    result = diverged.run_with_retries(
        "plain", app.image, target_stack,
        env=diverged.env_with_stack(target_stack))
    assert result.ok


def test_compute_ldconfig_reflects_divergence(diverged):
    from repro.sysmodel.ldconfig import read_cache
    login_cache = {e.soname for e in read_cache(diverged.machine.fs)}
    compute_cache = {e.soname
                     for e in read_cache(diverged.compute_machine.fs)}
    assert "libz.so.1" in login_cache
    assert "libz.so.1" not in compute_cache
