"""The batch evaluation engine: caching, invalidation, the matrix."""

import pytest

from repro.core import Feam
from repro.core.engine import (
    EngineBinary,
    EvaluationEngine,
    environment_fingerprint,
)
from repro.toolchain.compilers import Language


@pytest.fixture
def compiled_app(make_site):
    """One MPI binary compiled at a throwaway donor site."""
    donor = make_site("engine-donor")
    stack = donor.find_stack("openmpi-1.4-intel")
    return donor.compile_mpi_program("e-app", Language.FORTRAN, stack)


class TestDescriptionCache:
    def test_identical_bytes_described_once(self, make_site, compiled_app):
        engine = EvaluationEngine()
        sites = [make_site("dc-a"), make_site("dc-b")]
        binary = EngineBinary(binary_id="e-app", image=compiled_app.image)
        engine.evaluate_matrix([binary], sites)
        assert engine.stats.description_misses == 1
        assert engine.stats.description_hits == 1

    def test_distinct_images_described_separately(self, make_site):
        donor = make_site("dc-donor")
        stack = donor.find_stack("openmpi-1.4-intel")
        apps = [donor.compile_mpi_program(f"dapp{i}", Language.FORTRAN, stack)
                for i in range(2)]
        engine = EvaluationEngine()
        site = make_site("dc-target")
        engine.evaluate_matrix(
            [EngineBinary(f"dapp{i}", app.image)
             for i, app in enumerate(apps)], [site])
        assert engine.stats.description_misses == 2
        assert engine.stats.description_hits == 0


class TestDiscoveryCache:
    def test_discovery_runs_once_per_site(self, make_site, compiled_app):
        engine = EvaluationEngine()
        sites = [make_site("di-a"), make_site("di-b")]
        binaries = [EngineBinary("e-app", compiled_app.image),
                    EngineBinary("e-app-2", compiled_app.image)]
        engine.evaluate_matrix(binaries, sites)
        # 4 cells over 2 sites: one discovery miss per site, then hits.
        assert engine.stats.discovery_misses == 2
        assert engine.stats.discovery_hits == 2


class TestEvaluationCache:
    def test_second_run_hits_every_cell(self, make_site, compiled_app):
        engine = EvaluationEngine()
        sites = [make_site("ev-a"), make_site("ev-b")]
        binaries = [EngineBinary("e-app", compiled_app.image)]
        first = engine.evaluate_matrix(binaries, sites)
        assert engine.stats.evaluation_misses == 2
        assert engine.stats.evaluation_hits == 0
        assert all(not c.report.cache.evaluation_hit for c in first.cells)

        second = engine.evaluate_matrix(binaries, sites)
        assert engine.stats.evaluation_misses == 2
        assert engine.stats.evaluation_hits == 2
        assert all(c.report.cache.evaluation_hit for c in second.cells)
        # Cached cells carry the same verdict.
        for cell in second.cells:
            mate = first.cell(cell.binary_id, cell.site_name)
            assert cell.ready == mate.ready

    def test_run_target_phase_reuses_the_cell(self, make_site, compiled_app):
        site = make_site("ev-feam")
        site.machine.fs.write("/home/user/e-app", compiled_app.image,
                              mode=0o755)
        feam = Feam()
        first = feam.run_target_phase(site, binary_path="/home/user/e-app")
        second = feam.run_target_phase(site, binary_path="/home/user/e-app")
        assert first.cache.evaluation_hit is False
        assert second.cache.evaluation_hit is True
        assert second.ready == first.ready
        assert feam.engine.stats.evaluation_hits == 1


class TestInvalidation:
    def test_unchanged_site_keeps_its_cells(self, make_site, compiled_app):
        engine = EvaluationEngine()
        site = make_site("inv-same")
        binaries = [EngineBinary("e-app", compiled_app.image)]
        engine.evaluate_matrix(binaries, [site])
        assert engine.refresh_site(site) is False
        engine.evaluate_matrix(binaries, [site])
        assert engine.stats.evaluation_hits == 1
        assert engine.stats.evaluation_misses == 1

    def test_changed_fingerprint_drops_only_that_site(
            self, make_site, compiled_app):
        engine = EvaluationEngine()
        changed = make_site("inv-changed")
        stable = make_site("inv-stable")
        binaries = [EngineBinary("e-app", compiled_app.image)]
        engine.evaluate_matrix(binaries, [changed, stable])
        before = engine.fingerprint_for(changed)

        # An OS upgrade lands on one site.
        changed.machine.fs.write_text(
            "/etc/redhat-release", "CentOS release 6.2 (Final)\n")
        assert engine.refresh_site(changed) is True
        assert engine.fingerprint_for(changed) != before

        engine.evaluate_matrix(binaries, [changed, stable])
        # The stable site's cell hits; the changed site's re-evaluates.
        assert engine.stats.evaluation_hits == 1
        assert engine.stats.evaluation_misses == 3

    def test_fingerprint_is_stable_across_twin_sites(self, make_site):
        a, b = make_site("twin"), make_site("twin")
        fa = environment_fingerprint(
            EvaluationEngine().tec_for(a).environment())
        fb = environment_fingerprint(
            EvaluationEngine().tec_for(b).environment())
        assert fa == fb


class TestMatrixShape:
    def test_cells_cover_the_cross_product(self, make_site, compiled_app):
        engine = EvaluationEngine()
        sites = [make_site("mx-a"), make_site("mx-b"), make_site("mx-c")]
        binaries = [EngineBinary("m-one", compiled_app.image),
                    EngineBinary("m-two", compiled_app.image)]
        result = engine.evaluate_matrix(binaries, sites)
        assert len(result.cells) == 6
        assert [(c.binary_id, c.site_name) for c in result.cells] == [
            (b.binary_id, s.name) for b in binaries for s in sites]
        assert all(cell.ready for cell in result.cells)

    def test_render_mentions_cells_and_cache(self, make_site, compiled_app):
        engine = EvaluationEngine()
        result = engine.evaluate_matrix(
            [EngineBinary("m-one", compiled_app.image)],
            [make_site("mr-a")])
        text = result.render()
        assert "m-one" in text
        assert "mr-a" in text
        assert "cache: description" in text

    def test_tuple_specs_are_accepted(self, make_site, compiled_app):
        engine = EvaluationEngine()
        result = engine.evaluate_matrix(
            [("tuple-app", compiled_app.image)], [make_site("mt-a")])
        assert result.cell("tuple-app", "mt-a") is not None

    def test_serial_and_parallel_agree(self, make_site, compiled_app):
        sites = [make_site("sp-a"), make_site("sp-b")]
        binaries = [EngineBinary("e-app", compiled_app.image)]
        serial = EvaluationEngine(max_workers=1).evaluate_matrix(
            binaries, sites)
        parallel = EvaluationEngine(max_workers=4).evaluate_matrix(
            binaries, sites)
        assert [(c.binary_id, c.site_name, c.ready)
                for c in serial.cells] == \
               [(c.binary_id, c.site_name, c.ready)
                for c in parallel.cells]
