"""FEAM configuration file and report rendering."""

import pytest

from repro.core.config import FeamConfig
from repro.core.prediction import (
    Determinant,
    DeterminantResult,
    Prediction,
    PredictionMode,
)


class TestConfig:
    def test_defaults(self):
        config = FeamConfig()
        assert config.serial_queue == "debug"
        assert config.mpiexec_for("Open MPI") == "mpiexec"
        assert "libc.so.6" in config.copy_excludes

    def test_mpiexec_override(self):
        config = FeamConfig(mpiexec_overrides={"MVAPICH2": "mpirun_rsh"})
        assert config.mpiexec_for("MVAPICH2") == "mpirun_rsh"
        assert config.mpiexec_for("Open MPI") == "mpiexec"
        assert config.mpiexec_for(None) == "mpiexec"

    def test_parse_roundtrip(self):
        original = FeamConfig(
            serial_queue="short", parallel_queue="devel",
            hello_nprocs=4, max_resolution_depth=3,
            staging_root="/scratch/stage", output_root="/scratch/out",
            mpiexec_overrides={"MVAPICH2": "mpirun_rsh"})
        parsed = FeamConfig.parse(original.render())
        assert parsed == original

    def test_parse_comments_and_blanks(self):
        config = FeamConfig.parse(
            "# a comment\n\nserial_queue = fast\n")
        assert config.serial_queue == "fast"

    def test_parse_rejects_bad_lines(self):
        with pytest.raises(ValueError):
            FeamConfig.parse("no equals sign here")
        with pytest.raises(ValueError):
            FeamConfig.parse("unknown_key = 1")


class TestPredictionTypes:
    def _prediction(self):
        return Prediction(
            ready=False, mode=PredictionMode.BASIC,
            determinants=(
                DeterminantResult(Determinant.ISA, True, "ok"),
                DeterminantResult(Determinant.C_LIBRARY, False, "too old"),
            ),
            reasons=("C library too old",))

    def test_determinant_lookup(self):
        prediction = self._prediction()
        assert prediction.determinant(Determinant.ISA).passed is True
        missing = prediction.determinant(Determinant.MPI_STACK)
        assert missing.passed is None

    def test_failed_determinants(self):
        assert self._prediction().failed_determinants == (
            Determinant.C_LIBRARY,)


class TestReportRendering:
    def test_not_ready_report_lists_reasons(self, make_site, mini_site):
        from repro.core import Feam
        from repro.mpi.implementations import open_mpi
        from repro.sites.site import StackRequest
        from repro.toolchain.compilers import CompilerFamily, Language

        stack = mini_site.find_stack("openmpi-1.4-intel")
        app = mini_site.compile_mpi_program("r-app", Language.FORTRAN, stack)
        bare = make_site(
            "bare-report", vendor_compilers=(),
            stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
        bare.machine.fs.write("/home/user/r-app", app.image, mode=0o755)
        report = Feam().run_target_phase(
            bare, binary_path="/home/user/r-app", staging_tag="rr")
        text = bare.machine.fs.read_text(report.output_path)
        assert "NOT READY" in text
        assert "missing shared libraries" in text
        assert "[FAIL] shared-library-compatibility" in text
        assert "feam cpu time" in text
