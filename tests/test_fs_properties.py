"""Property-based tests of the virtual filesystem."""

import posixpath
import string

from hypothesis import given, settings, strategies as st

from repro.sysmodel.fs import VirtualFilesystem

_segment = st.text(string.ascii_lowercase + string.digits,
                   min_size=1, max_size=8)
_paths = st.lists(_segment, min_size=1, max_size=5).map(
    lambda parts: "/" + "/".join(parts))


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(_paths, st.binary(max_size=64),
                       min_size=1, max_size=12))
def test_write_then_read_consistency(files):
    fs = VirtualFilesystem()
    written = {}
    for path, content in files.items():
        try:
            fs.write(path, content)
        except Exception:
            # A path may be shadowed by an earlier file acting as a
            # directory component; those writes legitimately fail.
            continue
        written[path] = content
        # Later writes may turn a file's ancestor into a directory; keep
        # only still-live entries.
    for path, content in written.items():
        if fs.is_file(path):
            assert fs.read(path) == content


@settings(max_examples=100, deadline=None)
@given(_paths, st.binary(max_size=32))
def test_normalisation_invariance(path, content):
    fs = VirtualFilesystem()
    fs.write(path, content)
    # Reading through redundant "." segments reaches the same node.
    parts = path.strip("/").split("/")
    noisy = "/" + "/./".join(parts)
    assert fs.read(noisy) == content


@settings(max_examples=100, deadline=None)
@given(st.lists(_paths, min_size=1, max_size=10, unique=True))
def test_walk_visits_every_file(paths):
    fs = VirtualFilesystem()
    created = []
    for path in paths:
        try:
            fs.write(path, b"x")
            created.append(path)
        except Exception:
            continue
    found = {posixpath.join(d, f)
             for d, _dirs, fnames in fs.walk("/") for f in fnames}
    for path in created:
        if fs.is_file(path):
            assert posixpath.normpath(path) in found


@settings(max_examples=80, deadline=None)
@given(_paths, _segment)
def test_symlink_realpath_terminates(path, name):
    fs = VirtualFilesystem()
    fs.write(path, b"data")
    link = "/links/" + name
    fs.symlink(link, path)
    assert fs.realpath(link) == posixpath.normpath(path)
    assert fs.read(link) == b"data"
