"""Cross-layer consistency properties (hypothesis).

The reproduction's central soundness invariant: the tools FEAM consumes
(ldd emulation, loader-visible checks) must agree with the ground-truth
dynamic loader over arbitrary library layouts and environments.  If these
drift, prediction accuracy becomes an artefact of inconsistent models
rather than of FEAM's design.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.elf import BinarySpec, write_elf
from repro.elf.constants import ElfType
from repro.sysmodel.distro import CENTOS_5_6
from repro.sysmodel.env import Environment
from repro.sysmodel.machine import Machine
from repro.tools.toolbox import Toolbox

_DIRS = ("/usr/lib64", "/opt/a/lib", "/opt/b/lib", "/srv/libs")

_stems = st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"])
_sonames = st.builds(lambda stem, major: f"lib{stem}.so.{major}",
                     _stems, st.integers(0, 2))


def _lib_image(soname: str, verdefs=()) -> bytes:
    return write_elf(BinarySpec(
        etype=ElfType.DYN, soname=soname,
        version_definitions=(soname,) + tuple(verdefs),
        needed=("libc.so.6",), payload_size=32))


@st.composite
def worlds(draw):
    """A random library layout, environment and binary."""
    placements = draw(st.dictionaries(
        _sonames, st.sampled_from(_DIRS), min_size=0, max_size=8))
    env_dirs = draw(st.lists(st.sampled_from(_DIRS), max_size=3,
                             unique=True))
    needed = draw(st.lists(_sonames, min_size=1, max_size=5, unique=True))
    return placements, env_dirs, needed


@settings(max_examples=60, deadline=None)
@given(worlds())
def test_ldd_agrees_with_loader(world):
    placements, env_dirs, needed = world
    machine = Machine("prop", "x86_64", CENTOS_5_6)
    machine.fs.write("/lib64/libc.so.6",
                     _lib_image("libc.so.6", ("GLIBC_2.5",)), mode=0o755)
    for soname, directory in placements.items():
        machine.fs.write(f"{directory}/{soname}", _lib_image(soname),
                         mode=0o755)
    env = Environment({"LD_LIBRARY_PATH": ":".join(env_dirs)})
    binary = write_elf(BinarySpec(needed=tuple(needed) + ("libc.so.6",),
                                  payload_size=32))
    machine.fs.write("/home/app", binary, mode=0o755)

    report = machine.loader.resolve(binary, env)
    toolbox = Toolbox(machine)
    ldd = toolbox.ldd("/home/app", env)

    assert ldd.recognised
    assert set(ldd.missing) == set(report.missing_sonames)
    ldd_resolved = {e.soname: e.path for e in ldd.entries if e.path}
    loader_resolved = {e.soname: e.path for e in report.entries if e.path}
    assert ldd_resolved == loader_resolved


@settings(max_examples=60, deadline=None)
@given(worlds())
def test_loader_visible_agrees_with_loader(world):
    placements, env_dirs, needed = world
    machine = Machine("prop2", "x86_64", CENTOS_5_6)
    machine.fs.write("/lib64/libc.so.6",
                     _lib_image("libc.so.6", ("GLIBC_2.5",)), mode=0o755)
    for soname, directory in placements.items():
        machine.fs.write(f"{directory}/{soname}", _lib_image(soname),
                         mode=0o755)
    env = Environment({"LD_LIBRARY_PATH": ":".join(env_dirs)})
    binary = write_elf(BinarySpec(needed=tuple(needed) + ("libc.so.6",),
                                  payload_size=32))
    report = machine.loader.resolve(binary, env)
    toolbox = Toolbox(machine)
    loader_missing = set(report.missing_sonames)
    for soname in needed:
        visible = toolbox.loader_visible_library(soname, env)
        assert (visible is None) == (soname in loader_missing), soname


@settings(max_examples=40, deadline=None)
@given(worlds())
def test_check_loadable_consistent_with_report(world):
    placements, env_dirs, needed = world
    machine = Machine("prop3", "x86_64", CENTOS_5_6)
    machine.fs.write("/lib64/libc.so.6",
                     _lib_image("libc.so.6", ("GLIBC_2.5",)), mode=0o755)
    for soname, directory in placements.items():
        machine.fs.write(f"{directory}/{soname}", _lib_image(soname),
                         mode=0o755)
    env = Environment({"LD_LIBRARY_PATH": ":".join(env_dirs)})
    binary = write_elf(BinarySpec(needed=tuple(needed) + ("libc.so.6",),
                                  payload_size=32))
    failure, report = machine.check_loadable(binary, env)
    assert (failure is None) == report.ok


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(_DIRS), min_size=1, max_size=4))
def test_loader_honours_env_order(env_dirs):
    """The first directory on LD_LIBRARY_PATH wins."""
    machine = Machine("prop4", "x86_64", CENTOS_5_6)
    machine.fs.write("/lib64/libc.so.6",
                     _lib_image("libc.so.6", ("GLIBC_2.5",)), mode=0o755)
    for directory in _DIRS:
        machine.fs.write(f"{directory}/libx.so.1", _lib_image("libx.so.1"),
                         mode=0o755)
    env = Environment({"LD_LIBRARY_PATH": ":".join(env_dirs)})
    binary = write_elf(BinarySpec(needed=("libx.so.1", "libc.so.6"),
                                  payload_size=32))
    report = machine.loader.resolve(binary, env)
    entry = next(e for e in report.entries if e.soname == "libx.so.1")
    assert entry.path == f"{env_dirs[0]}/libx.so.1"
