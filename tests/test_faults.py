"""The fault-injection substrate: plans, determinism, the fs hook.

The load-bearing property is *hash-keyed* fire decisions: whether an
opportunity faults is a pure function of (seed, kind, site, key), so
two plans built from the same profile and seed inject identical faults
no matter the call order.  Everything else -- transient clearing,
site scoping, ELF perturbation, the no-op facade -- rides on that.
"""

import json

import pytest

from repro import obs
from repro.sysmodel import faults
from repro.sysmodel.faults import (
    PROFILES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedReadError,
)
from repro.sysmodel.fs import FsError

ELF = b"\x7fELF" + bytes(range(60))


def always(kind, sites=("*",), **kwargs):
    return FaultSpec(kind=kind, sites=sites, rate=1.0, **kwargs)


class TestParsing:
    def test_text_round_trips_through_render(self):
        plan = FaultPlan.parse(PROFILES["flaky"], seed=3, name="flaky")
        again = FaultPlan.parse(plan.render(), seed=3, name="flaky")
        assert again.specs == plan.specs

    def test_text_format_fields(self):
        plan = FaultPlan.parse(
            "discovery-timeout @ ranger,fir rate=0.5 transient fires=2\n"
            "# a comment\n"
            "read-error @ * rate=0.15 persistent\n")
        first, second = plan.specs
        assert first.kind is FaultKind.DISCOVERY_TIMEOUT
        assert first.sites == ("ranger", "fir")
        assert first.transient and first.fires == 2
        assert second.sites == ("*",) and not second.transient
        assert second.rate == 0.15

    def test_unknown_kind_reports_the_line(self):
        with pytest.raises(ValueError, match="line 2.*explode"):
            FaultPlan.parse("read-error @ *\nexplode @ *\n")

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError, match="unknown token"):
            FaultPlan.parse("read-error @ * sometimes\n")

    def test_json_profile(self):
        plan = FaultPlan.parse(json.dumps({
            "name": "from-json",
            "faults": [{"kind": "elf-truncation", "sites": ["fir"],
                        "rate": 0.25, "transient": True, "fires": 3}],
        }), seed=9)
        assert plan.name == "from-json"
        (spec,) = plan.specs
        assert spec.kind is FaultKind.ELF_TRUNCATION
        assert spec.sites == ("fir",)
        assert spec.transient and spec.fires == 3

    def test_builtin_profiles_parse(self):
        for name in PROFILES:
            plan = FaultPlan.profile(name, seed=1)
            assert plan.name == name

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultPlan.profile("nope")


class TestDeterminism:
    KEYS = [f"/lib/lib{i}.so" for i in range(40)]

    def _armed(self, seed):
        plan = FaultPlan([FaultSpec(FaultKind.READ_ERROR, rate=0.3)],
                         seed=seed)
        spec = plan.specs[0]
        return {key for key in self.KEYS
                if plan._fires(spec, "ranger", key)}

    def test_same_seed_same_decisions(self):
        assert self._armed(7) == self._armed(7)

    def test_different_seed_different_decisions(self):
        assert self._armed(7) != self._armed(8)

    def test_decision_is_call_order_independent(self):
        plan_a = FaultPlan([FaultSpec(FaultKind.READ_ERROR, rate=0.3)],
                           seed=7)
        plan_b = FaultPlan([FaultSpec(FaultKind.READ_ERROR, rate=0.3)],
                           seed=7)
        spec = plan_a.specs[0]
        forward = [bool(plan_a._fires(spec, "s", k)) for k in self.KEYS]
        backward = [bool(plan_b._fires(spec, "s", k))
                    for k in reversed(self.KEYS)]
        assert forward == list(reversed(backward))


class TestFlavours:
    def test_transient_clears_after_fires(self):
        plan = FaultPlan([always(FaultKind.READ_ERROR, transient=True,
                                 fires=2)])
        for _ in range(2):
            with pytest.raises(InjectedReadError):
                plan.check("fir", FaultKind.READ_ERROR, key="/a")
        plan.check("fir", FaultKind.READ_ERROR, key="/a")  # cleared
        # Clearing is per opportunity key, not global.
        with pytest.raises(InjectedReadError):
            plan.check("fir", FaultKind.READ_ERROR, key="/b")

    def test_persistent_fires_forever(self):
        plan = FaultPlan([always(FaultKind.DISCOVERY_TIMEOUT)])
        for _ in range(5):
            with pytest.raises(InjectedFault):
                plan.check("fir", FaultKind.DISCOVERY_TIMEOUT, key="d")

    def test_site_scoping(self):
        plan = FaultPlan([always(FaultKind.READ_ERROR,
                                 sites=("ranger",))])
        plan.check("forge", FaultKind.READ_ERROR, key="/a")  # clean
        with pytest.raises(InjectedReadError):
            plan.check("ranger", FaultKind.READ_ERROR, key="/a")

    def test_read_error_is_an_fs_error(self):
        plan = FaultPlan([always(FaultKind.COPY_FAILURE)])
        with pytest.raises(FsError):
            plan.check("fir", FaultKind.COPY_FAILURE, key="/a")

    def test_summary_counts_fires(self):
        plan = FaultPlan([always(FaultKind.READ_ERROR)], seed=5,
                         name="s")
        for key in ("/a", "/b"):
            with pytest.raises(InjectedReadError):
                plan.check("fir", FaultKind.READ_ERROR, key=key)
        summary = plan.summary()
        assert summary["injected"] == 2 == plan.injected
        assert summary["by_kind"] == {"read-error": 2}
        assert summary["by_site"] == {"read-error@fir": 2}


class TestImagePerturbation:
    def test_truncation_cuts_inside_the_header(self):
        plan = FaultPlan([always(FaultKind.ELF_TRUNCATION)])
        torn = plan.filter_image("fir", "/bin/app", ELF)
        assert torn == ELF[:12]

    def test_corruption_keeps_the_magic(self):
        plan = FaultPlan([always(FaultKind.ELF_CORRUPTION)])
        bad = plan.filter_image("fir", "/bin/app", ELF)
        assert bad != ELF and len(bad) == len(ELF)
        assert bad.startswith(b"\x7fELF")

    def test_non_elf_data_passes_through(self):
        plan = FaultPlan([always(FaultKind.ELF_TRUNCATION)])
        text = b"#!/bin/sh\necho hello\n"
        assert plan.filter_image("fir", "/bin/script", text) == text

    def test_clean_draw_passes_through(self):
        plan = FaultPlan([FaultSpec(FaultKind.ELF_TRUNCATION,
                                    rate=0.0)])
        assert plan.filter_image("fir", "/bin/app", ELF) == ELF


class TestFacade:
    def test_no_plan_is_a_no_op(self):
        assert faults.active() is None
        faults.check("fir", FaultKind.READ_ERROR, key="/a")
        assert faults.filter_image("fir", "/a", ELF) == ELF

    def test_injecting_installs_and_restores(self):
        plan = FaultPlan([always(FaultKind.READ_ERROR)])
        with faults.injecting(plan):
            assert faults.active() is plan
            with pytest.raises(InjectedReadError):
                faults.check("fir", FaultKind.READ_ERROR, key="/a")
        assert faults.active() is None

    def test_injecting_restores_on_error(self):
        plan = FaultPlan([])
        with pytest.raises(RuntimeError, match="boom"):
            with faults.injecting(plan):
                raise RuntimeError("boom")
        assert faults.active() is None


class TestFilesystemArming:
    def test_armed_read_raises_and_disarm_clears(self, mini_site):
        fs = mini_site.machine.fs
        fs.write("/tmp/payload", b"data")
        plan = FaultPlan([always(FaultKind.READ_ERROR,
                                 sites=(mini_site.machine.hostname,))])
        plan.arm([mini_site])
        with pytest.raises(FsError):
            fs.read("/tmp/payload")
        FaultPlan.disarm([mini_site])
        assert fs.read("/tmp/payload") == b"data"

    def test_armed_hook_perturbs_elf_reads(self, mini_site):
        fs = mini_site.machine.fs
        fs.write("/tmp/app", ELF, mode=0o755)
        plan = FaultPlan([always(FaultKind.ELF_TRUNCATION)])
        plan.arm([mini_site])
        try:
            assert fs.read("/tmp/app") == ELF[:12]
        finally:
            FaultPlan.disarm([mini_site])


class TestObservability:
    def test_every_injection_is_an_event_and_counter(self):
        plan = FaultPlan([always(FaultKind.READ_ERROR)])
        with obs.capture() as collector:
            with pytest.raises(InjectedReadError):
                plan.check("fir", FaultKind.READ_ERROR, key="/a")
        events = [e for e in collector.events.events
                  if e.name == "fault.injected"]
        assert len(events) == 1
        assert events[0].attrs["kind"] == "read-error"
        assert events[0].attrs["site"] == "fir"
        counters = collector.metrics.to_dict()["counters"]
        assert counters["resilience.faults.injected"] == 1
        assert counters["resilience.faults.read-error"] == 1
