"""Wide events: the bounded ring, JSONL streaming and torn-tail reads.

The sink's contract mirrors ``MatrixJournal``: every emitted record is
flushed to disk as one JSONL line (a killed run loses at most the
in-flight cell), the in-memory ring is strictly bounded (evictions are
counted, never silent), and the reader skips a torn final line instead
of refusing the whole file.
"""

import json
import threading

import pytest

from repro import obs
from repro.obs.wide import (
    CORE_FIELDS,
    SCHEMA_VERSION,
    WideEventSink,
    parse_jsonl,
    read_jsonl,
    write_jsonl,
)


def _record(index=0, **extra):
    record = {
        "site": f"gen-{index:04d}", "binary": "app-0",
        "outcome": "ready", "ready": True, "faulted": False,
        "sim_seconds": 35.2, "wall_seconds": 0.004,
        "worker": "worker-0",
    }
    record.update(extra)
    return record


class TestRing:
    def test_ring_is_bounded_and_evictions_counted(self):
        sink = WideEventSink(ring_size=4)
        for index in range(10):
            sink.emit(_record(index))
        assert len(sink) == 4
        assert sink.emitted == 10
        assert sink.dropped == 6
        # Oldest-first snapshot holds the *last* four records.
        assert [r["site"] for r in sink.events()] == \
            [f"gen-{i:04d}" for i in range(6, 10)]

    def test_emit_sets_schema_version(self):
        sink = WideEventSink()
        sink.emit(_record())
        assert sink.events()[0]["schema"] == SCHEMA_VERSION

    def test_emit_respects_explicit_schema(self):
        sink = WideEventSink()
        sink.emit(_record(schema=0))
        assert sink.events()[0]["schema"] == 0

    def test_drain_empties_the_ring(self):
        sink = WideEventSink()
        for index in range(3):
            sink.emit(_record(index))
        assert len(sink.drain()) == 3
        assert len(sink) == 0
        assert sink.emitted == 3  # drain never rewrites history

    def test_counters_and_lag_gauge_under_a_collector(self):
        with obs.capture() as collector:
            sink = WideEventSink(ring_size=2)
            for index in range(5):
                sink.emit(_record(index))
            counters = collector.metrics.to_dict()["counters"]
            gauges = collector.metrics.to_dict()["gauges"]
            assert counters["obs.wide.emitted"] == 5
            assert counters["obs.wide.dropped"] == 3
            assert gauges["obs.wide.lag"] == 2
            sink.drain()
            gauges = collector.metrics.to_dict()["gauges"]
            assert gauges["obs.wide.lag"] == 0

    def test_concurrent_emit_loses_nothing(self):
        sink = WideEventSink(ring_size=10_000)
        threads = [
            threading.Thread(
                target=lambda base=base: [
                    sink.emit(_record(base * 100 + i)) for i in range(100)])
            for base in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sink.emitted == 800
        assert len(sink) == 800
        assert sink.dropped == 0


class TestStreaming:
    def test_every_emit_is_flushed_to_disk(self, tmp_path):
        path = tmp_path / "wide.jsonl"
        sink = WideEventSink(ring_size=2, path=str(path))
        for index in range(5):
            sink.emit(_record(index))
        # Without close(): flush-per-line means the file is already
        # complete, even though the ring only holds the last two.
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert len(sink) == 2
        sink.close()

    def test_file_stream_appends(self, tmp_path):
        path = tmp_path / "wide.jsonl"
        with WideEventSink(path=str(path)) as sink:
            sink.emit(_record(0))
        with WideEventSink(path=str(path)) as sink:
            sink.emit(_record(1))
        assert len(read_jsonl(str(path))) == 2

    def test_export_and_write_jsonl_round_trip(self, tmp_path):
        sink = WideEventSink()
        tricky = _record(0, detail='quote " backslash \\ newline \n end',
                         unicode="site-ü☃")
        sink.emit(tricky)
        parsed = parse_jsonl(sink.export_jsonl())
        assert parsed == sink.events()
        out = tmp_path / "out.jsonl"
        assert sink.write_jsonl(str(out)) == 1
        assert read_jsonl(str(out)) == sink.events()
        assert read_jsonl(str(out))[0]["detail"] \
            == 'quote " backslash \\ newline \n end'


class TestParsing:
    def test_torn_tail_is_skipped(self):
        text = (json.dumps(_record(0)) + "\n"
                + json.dumps(_record(1)) + "\n"
                + '{"site": "gen-0002", "trunc')  # killed mid-write
        records = parse_jsonl(text)
        assert [r["site"] for r in records] == ["gen-0000", "gen-0001"]

    def test_strict_mode_raises_on_torn_tail(self):
        with pytest.raises(ValueError, match="invalid JSON"):
            parse_jsonl('{"torn', strict=True)

    def test_non_object_lines_skipped_or_strict(self):
        assert parse_jsonl('[1, 2]\n42\n') == []
        with pytest.raises(ValueError, match="not an object"):
            parse_jsonl('[1, 2]', strict=True)

    def test_newer_schema_is_refused_even_lenient(self):
        line = json.dumps(_record(0, schema=SCHEMA_VERSION + 1))
        with pytest.raises(ValueError, match="newer"):
            parse_jsonl(line)

    def test_blank_lines_ignored(self):
        text = "\n" + json.dumps(_record(0)) + "\n\n"
        assert len(parse_jsonl(text)) == 1

    def test_write_jsonl_module_function(self, tmp_path):
        path = tmp_path / "w.jsonl"
        records = [_record(i) for i in range(3)]
        assert write_jsonl(str(path), records) == 3
        assert read_jsonl(str(path)) == records


class TestSchemaContract:
    def test_core_fields_are_stable(self):
        # Renaming a core field is a schema break: bump SCHEMA_VERSION
        # and update every consumer before touching this tuple.
        assert CORE_FIELDS == (
            "schema", "site", "binary", "outcome", "ready", "faulted",
            "sim_seconds", "wall_seconds", "worker")
        assert SCHEMA_VERSION == 1
