"""MPI implementation, stack and runtime model tests."""

import pytest

from repro.elf import describe_elf
from repro.mpi.implementations import (
    MpiImplementationKind,
    mpich2,
    mvapich2,
    open_mpi,
)
from repro.mpi.runtime import AbiPairRates, classify_pair
from repro.mpi.stack import Interconnect, MpiStackSpec
from repro.toolchain.compilers import Language, gnu, intel


class TestImplementations:
    def test_version_tuple_handles_prereleases(self):
        assert mvapich2("1.7rc1").version_tuple == (1, 7)
        assert mvapich2("1.7a2").version_tuple == (1, 7)
        assert open_mpi("1.4").version_tuple == (1, 4)

    def test_openmpi_app_deps_table1_identifiers(self):
        sonames = [d.soname for d in open_mpi("1.4").app_deps(Language.C)]
        assert "libmpi.so.0" in sonames
        assert "libnsl.so.1" in sonames and "libutil.so.1" in sonames

    def test_openmpi_fortran_adds_f77_f90(self):
        sonames = [d.soname
                   for d in open_mpi("1.4").app_deps(Language.FORTRAN)]
        assert sonames[0] == "libmpi_f77.so.0"
        assert "libmpi_f90.so.0" in sonames

    def test_mvapich_identifiers(self):
        sonames = [d.soname for d in mvapich2("1.7a").app_deps(Language.C)]
        assert "libibverbs.so.1" in sonames
        assert "libibumad.so.3" in sonames
        assert any(s.startswith("libmpich.so") for s in sonames)

    def test_mpich2_lacks_ib_identifiers(self):
        sonames = [d.soname for d in mpich2("1.4").app_deps(Language.C)]
        assert not any("ibverbs" in s or "ibumad" in s for s in sonames)
        assert "libmpich.so.3" in sonames

    def test_mvapich_soname_changed_at_1_7(self):
        old = [d.soname for d in mvapich2("1.2").app_deps(Language.C)]
        new = [d.soname for d in mvapich2("1.7a2").app_deps(Language.C)]
        assert "libmpich.so.1.0" in old
        assert "libmpich.so.3" in new

    def test_products_cover_app_deps(self):
        """Every MPI-owned soname an app links must be shipped."""
        system_libs = {"libnsl.so.1", "libutil.so.1", "libm.so.6",
                       "librt.so.1", "libdl.so.2", "libibverbs.so.1",
                       "libibumad.so.3", "librdmacm.so.1"}
        for release in (open_mpi("1.3"), open_mpi("1.4"), mpich2("1.3"),
                        mpich2("1.4"), mvapich2("1.2"), mvapich2("1.7a")):
            shipped = {p.soname for p in release.products()}
            for lang in (Language.C, Language.FORTRAN):
                for dep in release.app_deps(lang):
                    if dep.soname not in system_libs:
                        assert dep.soname in shipped, (release, dep.soname)

    def test_factories_cache(self):
        assert open_mpi("1.4") is open_mpi("1.4")


class TestStackSpec:
    def test_slug_and_fingerprint(self):
        spec = MpiStackSpec(open_mpi("1.4"), intel("12.0"),
                            Interconnect.INFINIBAND)
        assert spec.slug == "openmpi-1.4-intel"
        assert spec.fingerprint == ("Open MPI", "1.4", "intel", "12.0")

    def test_str(self):
        spec = MpiStackSpec(mvapich2("1.7a"), gnu("4.1.2"),
                            Interconnect.INFINIBAND)
        assert "MVAPICH2 1.7a" in str(spec)
        assert "gnu" in str(spec)


class TestStackInstall:
    @pytest.fixture
    def installed(self, mini_site):
        return mini_site.find_stack("openmpi-1.4-intel")

    def test_layout(self, mini_site, installed):
        fs = mini_site.machine.fs
        assert fs.is_file(installed.wrapper_path("mpicc"))
        assert fs.is_file(installed.wrapper_path("mpif90"))
        assert fs.is_file(installed.mpiexec_path)
        assert fs.is_file(installed.prefix + "/include/mpi.h")
        assert fs.is_file(installed.libdir + "/libmpi.so.0")

    def test_wrapper_reveals_compiler(self, mini_site, installed):
        text = mini_site.machine.fs.read_text(
            installed.wrapper_path("mpicc"))
        assert "CC=" in text
        assert "icc" in text

    def test_installed_library_is_valid_elf(self, mini_site, installed):
        fs = mini_site.machine.fs
        real = fs.realpath(installed.libdir + "/libmpi.so.0")
        info = describe_elf(fs.read(real))
        assert info.soname == "libmpi.so.0"
        assert "libopen-rte.so.0" in info.needed

    def test_env_additions_include_vendor_compiler(self, installed):
        additions = dict()
        for var, path in installed.env_additions():
            additions.setdefault(var, []).append(path)
        assert installed.libdir in additions["LD_LIBRARY_PATH"]
        assert any("intel" in p for p in additions["LD_LIBRARY_PATH"])

    def test_gnu_stack_omits_system_compiler_dirs(self, mini_site):
        stack = mini_site.find_stack("openmpi-1.4-gnu")
        lib_additions = [p for var, p in stack.env_additions()
                         if var == "LD_LIBRARY_PATH"]
        assert lib_additions == [stack.libdir]

    def test_module_name(self, installed):
        assert installed.module_name == "openmpi/1.4-intel"


class TestAbiPairClassification:
    def spec(self, release, compiler):
        return MpiStackSpec(release, compiler, Interconnect.INFINIBAND)

    def test_identical_pair_is_clean(self):
        a = self.spec(open_mpi("1.4"), intel("12.0"))
        assert classify_pair(a, a) == AbiPairRates(0.0, 0.0)

    def test_same_release_other_compiler_version_is_clean(self):
        a = self.spec(open_mpi("1.4"), intel("12.0"))
        b = self.spec(open_mpi("1.4"), intel("11.1"))
        assert classify_pair(a, b).total == 0.0

    def test_compiler_family_mismatch(self):
        a = self.spec(open_mpi("1.4"), intel("12.0"))
        b = self.spec(open_mpi("1.4"), gnu("4.4.5"))
        rates = classify_pair(a, b)
        assert rates.total > 0

    def test_version_mismatch_worse_than_series_mismatch(self):
        base = self.spec(mvapich2("1.7a"), gnu("4.1.2"))
        series = self.spec(mvapich2("1.7a2"), gnu("4.1.2"))
        version = self.spec(mvapich2("1.2"), gnu("4.1.2"))
        assert classify_pair(base, series).total < \
            classify_pair(base, version).total

    def test_compiler_mismatch_adds_risk(self):
        a = self.spec(open_mpi("1.3"), gnu("3.4.6"))
        same_family = self.spec(open_mpi("1.4"), gnu("4.1.2"))
        cross_family = self.spec(open_mpi("1.4"), intel("11.1"))
        assert classify_pair(a, cross_family).total > \
            classify_pair(a, same_family).total
