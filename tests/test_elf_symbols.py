"""Dynamic symbol tables: writer/reader round-trip and tool integration."""

import shutil
import subprocess

import pytest

from repro.elf import BinarySpec, parse_elf, write_elf
from repro.elf.constants import ElfClass, ElfData, ElfMachine, ElfType
from repro.elf.structs import DynamicSymbol


def _app_spec(**overrides):
    defaults = dict(
        needed=("libfoo.so.1", "libc.so.6"),
        version_requirements={"libc.so.6": ("GLIBC_2.2.5", "GLIBC_2.3.4")},
        symbols=(
            DynamicSymbol("main", defined=True),
            DynamicSymbol("foo_call", defined=False),
            DynamicSymbol("printf", defined=False, version="GLIBC_2.2.5"),
            DynamicSymbol("memcpy", defined=False, version="GLIBC_2.3.4"),
        ))
    defaults.update(overrides)
    return BinarySpec(**defaults)


class TestRoundTrip:
    def test_symbols_roundtrip(self):
        elf = parse_elf(write_elf(_app_spec()))
        assert elf.symbols == _app_spec().symbols

    def test_exports_and_imports_split(self):
        elf = parse_elf(write_elf(_app_spec()))
        assert [s.name for s in elf.exported_symbols] == ["main"]
        assert [s.name for s in elf.imported_symbols] == [
            "foo_call", "printf", "memcpy"]

    def test_versioned_exports_in_library(self):
        spec = BinarySpec(
            etype=ElfType.DYN, soname="libv.so.2",
            version_definitions=("libv.so.2", "V_2.0", "V_2.1"),
            symbols=(DynamicSymbol("v_new", True, "V_2.1"),
                     DynamicSymbol("v_old", True, "V_2.0")))
        elf = parse_elf(write_elf(spec))
        by_name = {s.name: s for s in elf.symbols}
        assert by_name["v_new"].version == "V_2.1"
        assert by_name["v_old"].version == "V_2.0"

    def test_32bit_big_endian_symbols(self):
        spec = _app_spec(machine=ElfMachine.PPC, elf_class=ElfClass.ELF32,
                         data=ElfData.MSB)
        elf = parse_elf(write_elf(spec))
        assert elf.symbols == spec.symbols

    def test_unknown_version_rejected(self):
        spec = _app_spec(symbols=(
            DynamicSymbol("x", False, "NOT_A_VERSION_1.0"),))
        with pytest.raises(ValueError, match="NOT_A_VERSION_1.0"):
            write_elf(spec)

    def test_version_indices_unique_across_files(self):
        # Two verneed files with overlapping version lists: each aux
        # gets a distinct global index, and symbols resolve correctly.
        spec = BinarySpec(
            needed=("liba.so.1", "libb.so.1", "libc.so.6"),
            version_requirements={
                "liba.so.1": ("API_1.0",),
                "libb.so.1": ("API_2.0",),
                "libc.so.6": ("GLIBC_2.2.5",)},
            symbols=(DynamicSymbol("a_fn", False, "API_1.0"),
                     DynamicSymbol("b_fn", False, "API_2.0"),
                     DynamicSymbol("printf", False, "GLIBC_2.2.5")))
        elf = parse_elf(write_elf(spec))
        by_name = {s.name: s for s in elf.symbols}
        assert by_name["a_fn"].version == "API_1.0"
        assert by_name["b_fn"].version == "API_2.0"
        assert by_name["printf"].version == "GLIBC_2.2.5"

    def test_no_symbols_section_when_empty(self):
        elf = parse_elf(write_elf(BinarySpec(needed=("libc.so.6",))))
        assert elf.symbols == ()
        assert elf.section(".dynsym") is None


@pytest.mark.skipif(shutil.which("nm") is None, reason="binutils not installed")
class TestRealBinutils:
    def test_real_nm_reads_our_symbols(self, tmp_path):
        path = tmp_path / "app"
        path.write_bytes(write_elf(_app_spec()))
        out = subprocess.run(["nm", "-D", str(path)],
                             capture_output=True, text=True).stdout
        assert "U foo_call" in out
        assert "printf@GLIBC_2.2.5" in out
        assert "T main" in out

    def test_real_readelf_versym(self, tmp_path):
        path = tmp_path / "app"
        path.write_bytes(write_elf(_app_spec()))
        out = subprocess.run(["readelf", "-V", str(path)],
                             capture_output=True, text=True).stdout
        assert ".gnu.version" in out
        assert "GLIBC_2.3.4" in out


class TestRealBinaryParsing:
    def test_parse_real_binary_symbols(self):
        try:
            with open("/bin/ls", "rb") as fh:
                data = fh.read()
        except OSError:
            pytest.skip("no /bin/ls")
        if data[:4] != b"\x7fELF":
            pytest.skip("/bin/ls is not ELF")
        elf = parse_elf(data)
        imports = {s.name for s in elf.imported_symbols}
        assert "malloc" in imports or "abort" in imports
        versioned = [s for s in elf.imported_symbols
                     if s.version and s.version.startswith("GLIBC_")]
        assert versioned


class TestToolboxNm:
    def test_nm_on_simulated_binary(self, mini_site):
        from repro.toolchain.compilers import Language
        stack = mini_site.find_stack("openmpi-1.4-gnu")
        app = mini_site.compile_mpi_program("nmapp", Language.C, stack)
        mini_site.machine.fs.write("/home/user/nmapp", app.image, mode=0o755)
        toolbox = mini_site.toolbox()
        symbols = toolbox.nm_dynamic("/home/user/nmapp")
        names = {s.name for s in symbols}
        assert "MPI_Init" in names and "main" in names
        text = toolbox.nm_render("/home/user/nmapp")
        assert "U MPI_Init" in text
        assert "T main" in text

    def test_nm_on_installed_library(self, mini_site):
        toolbox = mini_site.toolbox()
        symbols = toolbox.nm_dynamic(
            "/opt/openmpi-1.4-gnu/lib/libmpi.so.0")
        exports = {s.name for s in symbols if s.defined}
        assert "MPI_Init" in exports

    def test_libc_exports_versioned(self, mini_site):
        toolbox = mini_site.toolbox()
        symbols = toolbox.nm_dynamic("/lib64/libc.so.6")
        printf = next(s for s in symbols if s.name == "printf")
        assert printf.defined
        assert printf.version == "GLIBC_2.0"

    def test_nm_unavailable(self, mini_site):
        from repro.tools.toolbox import Toolbox, ToolUnavailable
        toolbox = Toolbox(mini_site.machine,
                          Toolbox.ALL_TOOLS - frozenset({"nm"}))
        with pytest.raises(ToolUnavailable):
            toolbox.nm_dynamic("/lib64/libc.so.6")
