"""Text renderers for binutils-style output."""

import pytest

from repro.elf import BinarySpec, parse_elf, write_elf
from repro.elf.constants import ElfType
from repro.elf.render import (
    render_objdump_private,
    render_readelf_comment,
    render_readelf_dynamic,
    render_readelf_versions,
)


@pytest.fixture
def binary_elf():
    return parse_elf(write_elf(BinarySpec(
        needed=("libmpi.so.0", "libc.so.6"),
        rpath="/opt/app/lib",
        version_requirements={"libc.so.6": ("GLIBC_2.2.5", "GLIBC_2.5")},
        comment=("GCC: (GNU) 4.1.2", "Intel(R) Compiler Version 11.1"))))


@pytest.fixture
def library_elf():
    return parse_elf(write_elf(BinarySpec(
        etype=ElfType.DYN, soname="libdemo.so.2",
        needed=("libc.so.6",),
        version_definitions=("libdemo.so.2", "DEMO_2.0"))))


class TestObjdump:
    def test_binary(self, binary_elf):
        text = render_objdump_private(binary_elf, "app")
        assert "file format elf64-x86-64" in text
        assert "  NEEDED               libmpi.so.0" in text
        assert "  RPATH                /opt/app/lib" in text
        assert "required from libc.so.6:" in text
        assert "GLIBC_2.5" in text

    def test_library(self, library_elf):
        text = render_objdump_private(library_elf, "libdemo.so.2")
        assert "  SONAME               libdemo.so.2" in text
        assert "Version definitions:" in text
        assert "DEMO_2.0" in text

    def test_hashes_match_sysv(self, binary_elf):
        # The rendered hashes are the real SysV elf_hash values.
        text = render_objdump_private(binary_elf)
        assert "0x0d696915" in text  # elf_hash("GLIBC_2.5")


class TestReadelfDynamic:
    def test_entries(self, binary_elf):
        text = render_readelf_dynamic(binary_elf)
        assert "Shared library: [libmpi.so.0]" in text
        assert "Shared library: [libc.so.6]" in text
        assert "Library rpath: [/opt/app/lib]" in text
        assert "(NULL" in text

    def test_soname(self, library_elf):
        assert "Library soname: [libdemo.so.2]" in \
            render_readelf_dynamic(library_elf)

    def test_static(self):
        elf = parse_elf(write_elf(BinarySpec(statically_linked=True)))
        assert "no dynamic section" in render_readelf_dynamic(elf)


class TestReadelfVersions:
    def test_requirements(self, binary_elf):
        text = render_readelf_versions(binary_elf)
        assert "Version needs section contains 1 entries:" in text
        assert "File: libc.so.6  Cnt: 2" in text
        assert "Name: GLIBC_2.2.5" in text

    def test_definitions(self, library_elf):
        text = render_readelf_versions(library_elf)
        assert "Version definitions section contains 2 entries:" in text
        assert "Flags: BASE" in text
        assert "Name: DEMO_2.0" in text

    def test_none(self):
        elf = parse_elf(write_elf(BinarySpec(statically_linked=True)))
        assert "No version information" in render_readelf_versions(elf)


class TestReadelfComment:
    def test_strings(self, binary_elf):
        text = render_readelf_comment(binary_elf)
        assert "String dump of section '.comment':" in text
        assert "GCC: (GNU) 4.1.2" in text
        assert "Intel(R) Compiler Version 11.1" in text

    def test_absent(self, library_elf):
        assert "was not dumped" in render_readelf_comment(library_elf)
