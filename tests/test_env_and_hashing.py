"""Environment mapping and stable-hash utilities."""

from hypothesis import given, settings, strategies as st

from repro.sysmodel.env import Environment
from repro.util.hashing import stable_hash, stable_uniform
from repro.util.intern import BlobStore


class TestEnvironment:
    def test_default_path(self):
        env = Environment()
        assert env["PATH"] == "/usr/bin:/bin"

    def test_prepend_and_dedup(self):
        env = Environment()
        env.prepend_path("PATH", "/opt/bin")
        env.prepend_path("PATH", "/usr/bin")
        assert env.path == ["/usr/bin", "/opt/bin", "/bin"]

    def test_append_path(self):
        env = Environment({"LD_LIBRARY_PATH": "/a"})
        env.append_path("LD_LIBRARY_PATH", "/b")
        assert env.ld_library_path == ["/a", "/b"]

    def test_append_moves_existing_to_end(self):
        env = Environment({"X": "/a:/b"})
        env.append_path("X", "/a")
        assert env.get_list("X") == ["/b", "/a"]

    def test_remove_path(self):
        env = Environment({"X": "/a:/b:/c"})
        env.remove_path("X", "/b")
        assert env.get_list("X") == ["/a", "/c"]
        env.remove_path("X", "/a")
        env.remove_path("X", "/c")
        assert "X" not in env

    def test_copy_is_independent(self):
        env = Environment()
        clone = env.copy()
        clone["NEW"] = "1"
        assert "NEW" not in env

    def test_empty_entries_dropped(self):
        env = Environment({"X": ":/a::"})
        assert env.get_list("X") == ["/a"]

    def test_mapping_protocol(self):
        env = Environment()
        env["FOO"] = "bar"
        assert env["FOO"] == "bar"
        assert "FOO" in env
        del env["FOO"]
        assert "FOO" not in env
        assert len(Environment({"A": "1"})) == 2  # A + default PATH


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_sensitive_to_order_and_type(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(None) != stable_hash("")
        assert stable_hash(True) != stable_hash(1)

    def test_no_concat_ambiguity(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_known_range(self):
        assert 0 <= stable_hash("x") < 2 ** 64

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.one_of(st.text(max_size=20),
                              st.integers(-10**9, 10**9),
                              st.floats(allow_nan=False,
                                        allow_infinity=False),
                              st.booleans(), st.none()),
                    max_size=5))
    def test_uniform_in_unit_interval(self, parts):
        value = stable_uniform(*parts)
        assert 0.0 <= value < 1.0

    def test_uniform_distribution_rough(self):
        draws = [stable_uniform("dist", i) for i in range(2000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55
        assert 0.08 < sum(1 for d in draws if d < 0.1) / len(draws) < 0.12


class TestBlobStore:
    def test_interning_dedups(self):
        store = BlobStore()
        a = store.intern(bytes(b"x" * 100))
        b = store.intern(bytes(b"x" * 100))
        assert a is b
        assert len(store) == 1
        assert store.total_bytes == 100

    def test_different_content_kept(self):
        store = BlobStore()
        store.intern(b"one")
        store.intern(b"two")
        assert len(store) == 2
