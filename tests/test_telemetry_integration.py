"""Fleet telemetry end to end: engine, exposition, endpoints, CLI.

The contract under test is the one the ``telemetry-gate`` CI job
enforces at scale: every cell -- evaluated, journal-restored, or
filled in by the worker-failure path -- emits exactly one wide event;
span trees survive only for the cells the tail policy elects; the
``/metrics`` shard family is one labeled name, not 48; and ``feam
query`` reproduces the matrix's own outcome counts.
"""

import json
import re
import urllib.request

import pytest

from repro import obs
from repro.__main__ import EXIT_FAILURE, EXIT_OK, feam_main
from repro.core.engine import EngineBinary, EvaluationEngine
from repro.core.resilience import MatrixJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import SamplingPolicy
from repro.obs.serve import TelemetryServer, render_prometheus
from repro.obs.store import parse_agg, run_query
from repro.obs.wide import CORE_FIELDS, WideEventSink, read_jsonl, \
    write_jsonl
from repro.toolchain.compilers import Language


def _binaries(make_site, count=2):
    donor = make_site("wide-donor")
    stack = donor.stacks[0]
    linked = donor.compile_mpi_program("w-app", Language.FORTRAN, stack)
    return [EngineBinary(binary_id=f"w-app-{i}", image=linked.image)
            for i in range(count)]


@pytest.fixture
def telemetry_run(make_site, tmp_path):
    """A 3-site x 2-binary matrix under the full telemetry overlay."""
    sites = [make_site(f"ti-{tag}") for tag in ("a", "b", "c")]
    binaries = _binaries(make_site)
    policy = SamplingPolicy(seed=7, head_n=2, latency_slo_seconds=1e9)
    path = str(tmp_path / "wide.jsonl")
    sink = WideEventSink(path=path)
    with obs.capture() as collector:
        result = EvaluationEngine(max_workers=2).evaluate_matrix(
            binaries, sites, wide_sink=sink, sampler=policy)
    sink.close()
    return sites, binaries, policy, path, sink, collector, result


class TestEngineWideEvents:
    def test_one_wide_event_per_cell(self, telemetry_run):
        sites, binaries, _, path, sink, collector, result = telemetry_run
        cells = len(sites) * len(binaries)
        assert len(result.cells) == cells
        assert sink.emitted == cells
        events = read_jsonl(path)
        assert len(events) == cells
        counters = collector.metrics.to_dict()["counters"]
        assert counters["obs.wide.emitted"] == cells
        assert {(e["binary"], e["site"]) for e in events} == \
            {(c.binary_id, c.site_name) for c in result.cells}

    def test_records_are_wide(self, telemetry_run):
        _, _, _, path, _, _, result = telemetry_run
        for event in read_jsonl(path):
            # Every core field present, flat, in one record.
            assert set(CORE_FIELDS) <= set(event)
            assert re.fullmatch(r"worker-\d+", event["worker"])
            # Cache provenance, retry and breaker context ride along.
            for field in ("description_hit", "discovery_hit",
                          "evaluation_hit", "attempts", "retry_seconds",
                          "fault_kind", "breaker_state", "steals",
                          "resumed", "spans_kept", "sample_reason"):
                assert field in event, f"missing {field}"
            # Per-determinant verdicts are flattened, not nested.
            det_fields = [key for key in event if key.startswith("det_")]
            assert det_fields
            assert all(isinstance(event[key], str) for key in det_fields)

    def test_outcomes_match_the_matrix(self, telemetry_run):
        _, _, _, path, _, _, result = telemetry_run
        events = read_jsonl(path)
        queried = {group: size for group, _values, size
                   in run_query(events, by="outcome", top=10).rows}
        for word in ("ready", "unknown", "no"):
            expected = sum(1 for cell in result.cells
                           if cell.outcome_word == word)
            assert queried.get(word, 0) == expected

    def test_spans_survive_only_for_elected_cells(self, telemetry_run):
        _, _, policy, path, _, collector, _ = telemetry_run
        events = read_jsonl(path)
        counters = collector.metrics.to_dict()["counters"]
        kept = counters.get("obs.sampling.kept", 0)
        dropped = counters.get("obs.sampling.dropped", 0)
        assert kept + dropped == len(events)
        elected = {
            (e["binary"], e["site"]) for e in events
            if policy.decide(e["site"], e["binary"], e["outcome"],
                             e["faulted"]).keep}
        surviving = {
            (s.attrs["binary"], s.attrs["site"])
            for s in collector.tracer.spans_named("engine.cell")}
        assert surviving == elected
        assert len(elected) == kept
        # The wide events agree about who kept a tree and why.
        for event in events:
            key = (event["binary"], event["site"])
            assert event["spans_kept"] == (key in elected)

    def test_site_and_matrix_spans_are_never_pruned(self, telemetry_run):
        sites, _, _, _, _, collector, _ = telemetry_run
        tracer = collector.tracer
        assert len(tracer.spans_named("engine.matrix")) == 1
        assert len(tracer.spans_named("engine.site")) == len(sites)


class TestResumedCells:
    def test_restored_cells_still_emit_wide_events(self, make_site,
                                                   tmp_path):
        sites = [make_site("tij-a"), make_site("tij-b")]
        binaries = _binaries(make_site)
        journal_path = str(tmp_path / "run.jsonl")
        with MatrixJournal(journal_path) as journal:
            EvaluationEngine().evaluate_matrix(binaries, sites,
                                               journal=journal)

        sink = WideEventSink()
        policy = SamplingPolicy(seed=7, head_n=0,
                                latency_slo_seconds=1e9)
        with obs.capture() as collector:
            resumed = EvaluationEngine().evaluate_matrix(
                binaries, sites, resume=MatrixJournal.load(journal_path),
                wide_sink=sink, sampler=policy)
        cells = len(resumed.cells)
        assert resumed.resumed == cells
        events = sink.events()
        assert len(events) == cells  # completeness includes restored cells
        for event in events:
            assert event["resumed"] is True
            assert event["wall_seconds"] is None  # the cell never ran
        counters = collector.metrics.to_dict()["counters"]
        assert counters.get("obs.sampling.kept", 0) \
            + counters.get("obs.sampling.dropped", 0) == cells


class TestShardExpositionFamily:
    @staticmethod
    def _registry():
        registry = MetricsRegistry()
        for layer in ("description", "evaluation"):
            for shard in range(3):
                registry.gauge(
                    f"engine.cache.{layer}.shard.{shard}.hit_rate"
                ).set(0.5 + shard / 10)
            registry.gauge(f"engine.cache.{layer}.hit_rate").set(0.9)
        return registry

    def test_one_labeled_family_replaces_per_shard_names(self):
        text = render_prometheus(self._registry())
        # Six samples, one metric name, labels carrying the dimensions.
        samples = re.findall(
            r'^feam_engine_cache_shard_hit_rate\{(.+)\} ([0-9.]+)$',
            text, flags=re.MULTILINE)
        assert len(samples) == 6
        labels = [dict(re.findall(r'(\w+)="([^"]*)"', label))
                  for label, _value in samples]
        assert {frozenset(d.items()) for d in labels} == {
            frozenset({"layer": layer, "shard": str(shard)}.items())
            for layer in ("description", "evaluation")
            for shard in range(3)}
        assert text.count("# TYPE feam_engine_cache_shard_hit_rate") == 1

    def test_no_unlabeled_shard_names_leak(self):
        text = render_prometheus(self._registry())
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            if "shard" in name:
                assert name == "feam_engine_cache_shard_hit_rate", line

    def test_per_layer_aggregates_stay_plain_gauges(self):
        text = render_prometheus(self._registry())
        assert "feam_engine_cache_description_hit_rate 0.9" in text
        assert "feam_engine_cache_evaluation_hit_rate 0.9" in text

    def test_engine_publishes_the_aggregates(self, make_site):
        sites = [make_site("agg-a")]
        binaries = _binaries(make_site)
        with obs.capture() as collector:
            EvaluationEngine().evaluate_matrix(binaries, sites)
        gauges = collector.metrics.to_dict()["gauges"]
        for layer in ("description", "discovery", "evaluation"):
            assert f"engine.cache.{layer}.hit_rate" in gauges
        # Only the sharded caches publish per-shard gauges.
        for layer in ("description", "evaluation"):
            assert any(name.startswith(f"engine.cache.{layer}.shard.")
                       for name in gauges)


class TestSnapshotEndpoint:
    def test_snapshot_serves_the_sample_shape(self):
        with obs.capture() as collector:
            collector.metrics.counter("cells.evaluated").inc(9)
            collector.metrics.histogram(
                "engine.cell.wall_seconds").observe(0.01)
            with TelemetryServer(collector, port=0) as server:
                with urllib.request.urlopen(
                        server.url + "/snapshot", timeout=5) as response:
                    assert response.status == 200
                    payload = json.loads(response.read())
        assert sorted(payload) == ["buckets", "events", "metrics",
                                   "spans"]
        assert payload["metrics"]["counters"]["cells.evaluated"] == 9
        assert "engine.cell.wall_seconds" in payload["buckets"]


class TestCli:
    def test_matrix_wide_out_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "wide.jsonl")
        code = feam_main([
            "matrix", "--sites", "fleet:n=4,seed=7", "--binaries", "2",
            "--wide-out", path, "--sample-spans", "2"])
        assert code == EXIT_OK
        events = read_jsonl(path)
        assert len(events) == 8  # 4 sites x 2 binaries
        _out, err = capsys.readouterr()
        assert f"wide events: 8 written to {path}" in err
        assert "span sampling: kept" in err

    def test_query_table_and_json(self, tmp_path, capsys):
        path = str(tmp_path / "events.jsonl")
        write_jsonl(path, [
            {"site": f"gen-{i:04d}", "outcome": "unknown" if i < 2
             else "ready", "wall_seconds": i / 100.0}
            for i in range(6)])
        assert feam_main(["query", path, "--where", "outcome=unknown",
                          "--by", "site"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "wide events: 2/6 match [outcome=unknown]" in out
        assert feam_main(["query", path, "--by", "outcome", "--agg",
                          "count", "--agg", "p95:wall_seconds",
                          "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 6
        assert payload["aggregations"] == ["count", "p95:wall_seconds"]

    def test_query_top_footer(self, tmp_path, capsys):
        path = str(tmp_path / "events.jsonl")
        write_jsonl(path, [{"site": f"gen-{i:04d}", "outcome": "ready"}
                           for i in range(10)])
        assert feam_main(["query", path, "--by", "site",
                          "--top", "3"]) == EXIT_OK
        assert "... and 7 more row(s)" in capsys.readouterr().out

    def test_query_errors_are_operational_failures(self, tmp_path,
                                                   capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert feam_main(["query", missing]) == EXIT_FAILURE
        path = str(tmp_path / "events.jsonl")
        write_jsonl(path, [{"site": "gen-0000"}])
        assert feam_main(["query", path, "--where",
                          "notaclause"]) == EXIT_FAILURE
        assert feam_main(["query", path, "--agg",
                          "count:site"]) == EXIT_FAILURE
        err = capsys.readouterr().err
        assert "unparsable" in err and "count takes no field" in err

    def test_stats_top_caps_the_tables(self, capsys):
        assert feam_main(["stats", "--binaries", "2",
                          "--top", "3"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "more row(s) (raise --top to see them)" in out

    def test_watch_drives_a_run_in_plain_mode(self, capsys):
        # capsys stdout is not a TTY, so watch must degrade to plain
        # periodic lines with no ANSI control codes.
        code = feam_main(["watch", "--sites", "fleet:n=4,seed=7",
                          "--binaries", "2", "--interval", "0.1"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "\x1b" not in out
        assert re.search(r"done: 8 cells, \d+ ready", out)
