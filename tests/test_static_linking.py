"""Static-linking support (paper Section VI.C remark).

Sites usually install MPI implementations without static libraries, which
denies scientists the statically-linked-migration escape hatch; where the
archives do exist, a static binary migrates with only the ISA determinant
in play.
"""

import pytest

from repro.core import Feam
from repro.mpi.implementations import open_mpi
from repro.sites.site import StackRequest, StaticLibrariesUnavailable
from repro.toolchain.compilers import CompilerFamily, Language


@pytest.fixture
def static_site(make_site):
    return make_site(
        "staticsite",
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU,
                             static_libs=True),))


def test_default_sites_lack_static_libs(mini_site):
    stack = mini_site.find_stack("openmpi-1.4-gnu")
    assert not stack.has_static_libs
    with pytest.raises(StaticLibrariesUnavailable):
        mini_site.compile_mpi_program("app", Language.C, stack, static=True)


def test_paper_sites_lack_static_libs(paper_sites):
    for site in paper_sites:
        assert not any(s.has_static_libs for s in site.stacks)


def test_static_archives_installed(static_site):
    stack = static_site.find_stack("openmpi-1.4-gnu")
    assert stack.has_static_libs
    fs = static_site.machine.fs
    assert fs.is_file(stack.libdir + "/libmpi.a")
    assert fs.read(stack.libdir + "/libmpi.a").startswith(b"!<arch>\n")


def test_static_binary_has_no_dynamic_section(static_site):
    stack = static_site.find_stack("openmpi-1.4-gnu")
    linked = static_site.compile_mpi_program("sapp", Language.C, stack,
                                             static=True)
    assert linked.needed == ()
    from repro.elf import describe_elf
    assert not describe_elf(linked.image).is_dynamic


def test_static_binary_migrates_cleanly(static_site, make_site):
    """A static binary loads at any same-ISA site regardless of its
    libraries -- the escape hatch the paper says is usually unavailable."""
    stack = static_site.find_stack("openmpi-1.4-gnu")
    app = static_site.compile_mpi_program("sapp", Language.FORTRAN, stack,
                                          static=True)
    # A target with nothing installed but the base system.
    bare = make_site(
        "barestatic", vendor_compilers=(), libc_version="2.3.4",
        system_gnu_version="3.4.6",
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
    failure, report = bare.machine.check_loadable(app.image)
    assert failure is None
    result = bare.run_with_retries(
        "sapp", app.image, bare.find_stack("openmpi-1.4-gnu"))
    assert result.ok


def test_feam_predicts_static_binary_ready(static_site, make_site):
    stack = static_site.find_stack("openmpi-1.4-gnu")
    app = static_site.compile_mpi_program("sapp2", Language.C, stack,
                                          static=True)
    target = make_site("statictarget")
    target.machine.fs.write("/home/user/sapp2", app.image, mode=0o755)
    report = Feam().run_target_phase(target, binary_path="/home/user/sapp2",
                                     staging_tag="static")
    assert report.ready
    # Known limitation, faithfully reproduced: with no NEEDED entries the
    # Table I identification cannot see the MPI implementation.
    assert report.prediction.selected_stack is None


def test_static_binary_fails_on_wrong_isa(static_site, make_site):
    stack = static_site.find_stack("openmpi-1.4-gnu")
    app = static_site.compile_mpi_program("sapp3", Language.C, stack,
                                          static=True)
    from repro.sysmodel.errors import FailureKind
    ppc = make_site("ppcsite", arch="ppc64")
    failure, _ = ppc.machine.check_loadable(app.image)
    assert failure is not None
    assert failure.failure.kind is FailureKind.EXEC_FORMAT
