"""Fleet-scale engine behaviour: sharding, stealing, content sharing.

The PR that introduced the work-stealing pool and the lock-striped
caches must not change *what* the engine computes -- only how fast.
The anchor is a golden file rendered by the pre-refactor engine
(``tests/golden/matrix_paper_5x4.txt``): the refactored engine must
reproduce it byte-for-byte, cache counters included.
"""

from pathlib import Path

import pytest

from repro.core.config import FeamConfig
from repro.core.engine import (
    EngineBinary,
    EvaluationEngine,
    default_matrix_workers,
)
from repro.core.sharding import HitMissCounter, ShardedMap
from repro.sites.catalog import build_paper_sites
from repro.sites.generator import resolve_sites
from repro.toolchain.compilers import Language

_GOLDEN = Path(__file__).parent / "golden" / "matrix_paper_5x4.txt"


def _paper_inputs(seed=20130101, count=4):
    sites = build_paper_sites(seed, cached=False)
    binaries = []
    for index in range(count):
        site = sites[index % len(sites)]
        stack = site.stacks[index % len(site.stacks)]
        name = f"app-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
    return sites, binaries


def _fleet_inputs(spec="fleet:n=10,seed=4", count=2):
    sites = resolve_sites(spec)
    binaries = []
    for index in range(count):
        site = sites[index]
        stack = site.stacks[index % len(site.stacks)]
        name = f"app-{site.name}-{stack.spec.slug}-{index}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
    return sites, binaries


class TestGoldenMatrix:
    """Differential gate against the pre-refactor engine's output."""

    def test_paper_matrix_renders_byte_identically(self):
        sites, binaries = _paper_inputs()
        engine = EvaluationEngine(max_workers=1)
        result = engine.evaluate_matrix(binaries, sites)
        assert result.render(verbose=False) == _GOLDEN.read_text()

    def test_parallel_grid_matches_serial(self):
        sites, binaries = _paper_inputs()
        serial = EvaluationEngine(max_workers=1).evaluate_matrix(
            binaries, sites)
        parallel = EvaluationEngine(max_workers=8).evaluate_matrix(
            binaries, sites)
        assert ([(c.binary_id, c.site_name, c.outcome_word)
                 for c in serial.cells]
                == [(c.binary_id, c.site_name, c.outcome_word)
                    for c in parallel.cells])


class TestWorkerPool:
    def test_default_pool_is_bounded(self):
        assert 4 <= default_matrix_workers() <= 32

    def test_config_drives_the_pool_size(self):
        # matrix_workers from the config file is the default; an
        # explicit max_workers constructor argument still wins.
        config = FeamConfig.parse("matrix_workers = 2\n")
        assert config.matrix_workers == 2
        engine = EvaluationEngine(config=config)
        assert engine.max_workers is None
        sites, binaries = _fleet_inputs()
        result = engine.evaluate_matrix(binaries, sites)
        assert len(result.cells) == len(binaries) * len(sites)

    def test_fleet_grid_deterministic_across_worker_counts(self):
        sites, binaries = _fleet_inputs()
        grids = []
        for workers in (1, 4):
            result = EvaluationEngine(
                max_workers=workers).evaluate_matrix(binaries, sites)
            grids.append([(c.binary_id, c.site_name, c.outcome_word)
                          for c in result.cells])
        assert grids[0] == grids[1]


class TestContentSharing:
    def test_discovery_runs_once_per_content_group(self):
        sites, binaries = _fleet_inputs()
        groups = {s.content_key for s in sites}
        engine = EvaluationEngine(max_workers=1)
        engine.evaluate_matrix(binaries, sites)
        stats = engine.stats
        assert stats.discovery_misses == len(groups)
        assert stats.evaluation_misses == len(groups) * len(binaries)
        assert (stats.evaluation_hits
                == (len(sites) - len(groups)) * len(binaries))

    def test_cached_cells_are_rehosted(self):
        sites, binaries = _fleet_inputs()
        engine = EvaluationEngine(max_workers=1)
        result = engine.evaluate_matrix(binaries, sites)
        for cell in result.cells:
            assert cell.report.environment.hostname == cell.site_name

    def test_refresh_divergence_drops_the_content_key(self):
        sites, _ = _fleet_inputs()
        site = sites[0]
        engine = EvaluationEngine(max_workers=1)
        engine.fingerprint_for(site)
        # An unchanged re-discovery keeps the site in its group ...
        assert engine.refresh_site(site) is False
        assert site.content_key is not None
        # ... a real environment change evicts it.
        site.machine.env["LOADEDMODULES"] = "ghost/1.0"
        site.machine.env["_LMFILES_"] = "/ghost"
        assert engine.refresh_site(site) is True
        assert site.content_key is None


class TestShardedMap:
    def test_lookup_counts_hits_store_counts_misses(self):
        cache = ShardedMap(4)
        assert cache.lookup("a") is None
        assert cache.hits == 0 and cache.misses == 0  # absent != miss
        cache.store("a", 1)
        assert cache.misses == 1
        assert cache.lookup("a") == 1
        assert cache.hits == 1

    def test_peek_and_put_do_not_count(self):
        cache = ShardedMap(4)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        assert cache.hits == 0 and cache.misses == 0

    def test_get_or_create_creates_once(self):
        cache = ShardedMap(2)
        calls = []
        for _ in range(3):
            cache.get_or_create("k", lambda: calls.append(1) or "v")
        assert calls == [1]

    def test_drop_if_filters_by_key(self):
        cache = ShardedMap(8)
        for i in range(20):
            cache.put(("site-a" if i % 2 else "site-b", i), i)
        assert cache.drop_if(lambda key: key[0] == "site-a") == 10
        assert len(cache) == 10

    def test_shard_stats_cover_all_lookups(self):
        cache = ShardedMap(4)
        for i in range(16):
            cache.store(i, i)
            cache.lookup(i)
        totals = cache.shard_stats()
        assert sum(h for h, _, _ in totals) == 16
        assert sum(m for _, m, _ in totals) == 16
        assert sum(n for _, _, n in totals) == 16

    def test_single_shard_still_works(self):
        cache = ShardedMap(1)
        cache.store("x", 1)
        assert cache.lookup("x") == 1


class TestHitMissCounter:
    def test_counts_accumulate(self):
        counter = HitMissCounter(stripes=4)
        for name in ("a", "b", "c"):
            counter.hit(name)
            counter.miss(name)
            counter.miss(name)
        assert counter.hits == 3
        assert counter.misses == 6
