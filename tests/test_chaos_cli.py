"""``feam chaos`` and ``feam matrix --journal/--resume`` end to end.

These run the real CLI entry points (paper sites, real matrix) -- the
contract CI's chaos-gate job relies on: exit 0 under injected faults,
a fault/retry/breaker summary, byte-identical same-seed reruns, and a
resume path that only re-evaluates what the journal is missing.
"""

import json

import pytest

from repro.__main__ import EXIT_FAILURE, EXIT_OK, feam_main


def run_chaos(capsys, *extra):
    code = feam_main(["chaos", "--binaries", "1", "--seed", "7",
                      *extra])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestChaosVerb:
    def test_flaky_profile_completes_with_summary(self, capsys,
                                                  tmp_path):
        out_json = tmp_path / "summary.json"
        code, out, err = run_chaos(
            capsys, "--verbose", "--summary-out", str(out_json))
        assert code == EXIT_OK
        assert "READINESS MATRIX" in out
        assert "chaos summary" in out
        assert "faults injected:" in out
        assert "breakers:" in out
        assert "Traceback" not in err       # degrade, never crash
        summary = json.loads(out_json.read_text())
        assert summary["plan"]["profile"] == "flaky"
        assert summary["plan"]["seed"] == 7
        assert summary["plan"]["injected"] > 0
        assert summary["matrix"]["cells"] == 5  # 1 binary x 5 sites
        assert set(summary["breakers"]) == \
            {"ranger", "forge", "blacklight", "india", "fir"}

    def test_same_seed_reruns_are_byte_identical(self, capsys):
        code_a, out_a, _ = run_chaos(capsys)
        code_b, out_b, _ = run_chaos(capsys)
        assert code_a == code_b == EXIT_OK
        assert out_a == out_b

    def test_profile_file_matches_the_builtin(self, capsys, tmp_path):
        from repro.sysmodel.faults import PROFILES
        profile = tmp_path / "custom.txt"
        profile.write_text(PROFILES["flaky"] + "\n")
        _, builtin_out, _ = run_chaos(capsys)
        code, file_out, _ = run_chaos(capsys, "--profile", str(profile))
        assert code == EXIT_OK
        # Same grid and counts; only the profile name line differs.
        strip = "profile: "
        assert [l for l in file_out.splitlines()
                if not l.startswith(strip)] == \
            [l for l in builtin_out.splitlines()
             if not l.startswith(strip)]

    def test_none_profile_injects_nothing(self, capsys):
        code, out, _ = run_chaos(capsys, "--profile", "none")
        assert code == EXIT_OK
        assert "faults injected: 0" in out

    def test_journal_then_resume_restores_cells(self, capsys, tmp_path):
        journal = tmp_path / "chaos.jsonl"
        code, out_full, _ = run_chaos(capsys, "--journal", str(journal))
        assert code == EXIT_OK
        lines = journal.read_text().splitlines()
        assert len(lines) == 6  # identity header + 5 cells
        assert "journal_header" in lines[0]
        code, out_resumed, err = run_chaos(capsys, "--resume",
                                           str(journal))
        assert code == EXIT_OK
        assert "resuming: 5 cell(s)" in err
        assert "5 resumed from the journal" in out_resumed
        # The restored grid tells the same story.
        grid = lambda text: [l for l in text.splitlines()
                             if l.startswith("app-")]
        assert grid(out_resumed) == grid(out_full)


class TestChaosFailureModes:
    def test_unknown_profile_is_operational_failure(self, capsys):
        assert feam_main(["chaos", "--profile", "nope"]) == EXIT_FAILURE
        assert "unknown fault profile" in capsys.readouterr().err

    def test_bad_profile_file_is_operational_failure(self, capsys,
                                                     tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("explode @ *\n")
        assert feam_main(["chaos", "--profile", str(bad)]) \
            == EXIT_FAILURE
        assert "bad fault profile" in capsys.readouterr().err

    def test_missing_resume_journal_is_operational_failure(
            self, capsys, tmp_path):
        assert feam_main(["chaos", "--resume",
                          str(tmp_path / "no.jsonl")]) == EXIT_FAILURE
        assert "cannot read journal" in capsys.readouterr().err


class TestMatrixCheckpointFlags:
    def test_matrix_journal_and_resume(self, capsys, tmp_path):
        journal = tmp_path / "m.jsonl"
        assert feam_main(["matrix", "--binaries", "1",
                          "--journal", str(journal)]) == EXIT_OK
        full = capsys.readouterr().out
        lines = journal.read_text().splitlines()
        assert len(lines) == 6  # identity header + 5 cells
        assert "journal_header" in lines[0]
        assert feam_main(["matrix", "--binaries", "1",
                          "--resume", str(journal)]) == EXIT_OK
        resumed = capsys.readouterr().out
        assert "resumed: 5 cell(s) restored from the journal" in resumed
        grid = lambda text: [l for l in text.splitlines()
                             if l.startswith("app-")]
        assert grid(resumed) == grid(full)

    def test_matrix_missing_resume_journal_fails(self, capsys,
                                                 tmp_path):
        assert feam_main(["matrix", "--resume",
                          str(tmp_path / "no.jsonl")]) == EXIT_FAILURE
        assert "cannot read journal" in capsys.readouterr().err
