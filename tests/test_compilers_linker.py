"""Compiler models and the link step."""

import pytest

from repro.elf import describe_elf
from repro.elf.constants import ElfMachine
from repro.toolchain.compilers import (
    Compiler,
    CompilerFamily,
    Language,
    gnu,
    intel,
    pgi,
)
from repro.toolchain.libc import glibc
from repro.toolchain.linker import LinkInput, link_program


class TestCompilerModels:
    def test_short_codes(self):
        assert CompilerFamily.GNU.short_code == "g"
        assert CompilerFamily.INTEL.short_code == "i"
        assert CompilerFamily.PGI.short_code == "p"

    def test_gnu_fortran_runtime_by_version(self):
        assert gnu("3.4.6")._gnu_fortran_runtime().soname == "libg2c.so.0"
        assert gnu("4.1.2")._gnu_fortran_runtime().soname == "libgfortran.so.1"
        assert gnu("4.4.5")._gnu_fortran_runtime().soname == "libgfortran.so.3"

    def test_gnu_cxx_levels_grow(self):
        assert gnu("3.4.6")._gnu_cxx_level() == "GLIBCXX_3.4"
        assert gnu("4.1.2")._gnu_cxx_level() == "GLIBCXX_3.4.8"
        assert gnu("4.4.5")._gnu_cxx_level() == "GLIBCXX_3.4.13"

    def test_gnu_runtime_deps_fortran(self):
        sonames = [d.soname for d in gnu("4.1.2").runtime_deps(
            Language.FORTRAN)]
        assert sonames[0] == "libgfortran.so.1"
        assert "libgcc_s.so.1" in sonames
        assert "libm.so.6" in sonames

    def test_intel_runtime_deps(self):
        c_deps = [d.soname for d in intel("12.0").runtime_deps(Language.C)]
        assert "libimf.so" in c_deps and "libsvml.so" in c_deps
        f_deps = [d.soname for d in intel("12.0").runtime_deps(
            Language.FORTRAN)]
        assert "libifcore.so.5" in f_deps and "libifport.so.5" in f_deps

    def test_pgi_runtime_deps(self):
        f_deps = [d.soname for d in pgi("10.3").runtime_deps(
            Language.FORTRAN)]
        assert "libpgf90.so" in f_deps and "libpgc.so" in f_deps

    def test_unsupported_language_rejected(self):
        c_only = Compiler(CompilerFamily.GNU, "4.1.2",
                          languages=(Language.C,))
        with pytest.raises(ValueError):
            c_only.runtime_deps(Language.FORTRAN)

    def test_products_define_expected_versions(self):
        products = {p.soname: p for p in gnu("4.4.5").products()}
        stdcxx = products["libstdc++.so.6"]
        assert "GLIBCXX_3.4.13" in stdcxx.verdefs
        assert "CXXABI_1.3" in stdcxx.verdefs
        fortran = products["libgfortran.so.3"]
        assert "GFORTRAN_1.0" in fortran.verdefs

    def test_banners(self):
        assert gnu("4.1.2").comment_banner().startswith("GCC")
        assert intel("11.1").comment_banner().startswith("Intel")
        assert pgi("7.2").comment_banner().startswith("PGI")

    def test_driver_names(self):
        assert "gcc" in gnu("4.1.2").driver_names(Language.C)
        assert gnu("3.4.6").driver_names(Language.FORTRAN) == ("g77",)
        assert gnu("4.1.2").driver_names(Language.FORTRAN) == ("gfortran",)
        assert intel("12.0").driver_names(Language.FORTRAN) == ("ifort",)
        assert pgi("10.3").driver_names(Language.C) == ("pgcc",)

    def test_factories_cache(self):
        assert gnu("4.1.2") is gnu("4.1.2")


class TestLinker:
    def _link(self, **kwargs):
        defaults = dict(name="app", language=Language.C,
                        compiler=gnu("4.1.2"), libc=glibc("2.5"),
                        payload_size=500)
        defaults.update(kwargs)
        return link_program(LinkInput(**defaults))

    def test_libc_is_last_needed(self):
        linked = self._link()
        assert linked.needed[-1] == "libc.so.6"

    def test_required_glibc_capped_by_ceiling(self):
        linked = self._link(libc=glibc("2.12"), glibc_ceiling=(2, 7))
        assert linked.required_glibc == (2, 7)

    def test_required_glibc_capped_by_build_libc(self):
        linked = self._link(libc=glibc("2.3.4"), glibc_ceiling=(2, 7))
        assert linked.required_glibc == (2, 3, 4)

    def test_image_encodes_requirement(self):
        linked = self._link(libc=glibc("2.12"), glibc_ceiling=(2, 7))
        info = describe_elf(linked.image)
        assert info.required_glibc.name == "GLIBC_2.7"

    def test_mpi_deps_come_first(self):
        from repro.toolchain.compilers import RuntimeDep
        linked = self._link(mpi_deps=(RuntimeDep("libmpi.so.0"),))
        assert linked.needed[0] == "libmpi.so.0"

    def test_comment_carries_compiler_banner(self):
        linked = self._link(compiler=intel("12.0"))
        info = describe_elf(linked.image)
        assert any(c.startswith("Intel") for c in info.comment)

    def test_fortran_links_runtime(self):
        linked = self._link(language=Language.FORTRAN)
        assert "libgfortran.so.1" in linked.needed
        info = describe_elf(linked.image)
        refs = {v.name for req in info.version_requirements
                for v in req.versions}
        assert "GFORTRAN_1.0" in refs

    def test_cxx_links_stdcxx_with_version(self):
        linked = self._link(language=Language.CXX, compiler=gnu("4.4.5"))
        assert "libstdc++.so.6" in linked.needed
        info = describe_elf(linked.image)
        refs = {v.name for req in info.version_requirements
                for v in req.versions}
        assert "GLIBCXX_3.4.13" in refs

    def test_static_link(self):
        linked = self._link(static=True)
        assert linked.needed == ()
        assert not describe_elf(linked.image).is_dynamic

    def test_unsupported_language_raises(self):
        c_only = Compiler(CompilerFamily.GNU, "4.1.2",
                          languages=(Language.C,))
        with pytest.raises(ValueError):
            self._link(compiler=c_only, language=Language.FORTRAN)

    def test_build_tag_differentiates_images(self):
        a = self._link(build_tag="siteA/stack1")
        b = self._link(build_tag="siteB/stack1")
        assert a.image != b.image
        assert describe_elf(a.image).needed == describe_elf(b.image).needed

    def test_machine_passthrough(self):
        linked = self._link(machine=ElfMachine.PPC64)
        assert describe_elf(linked.image).machine is ElfMachine.PPC64
