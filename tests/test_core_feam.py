"""FEAM orchestration and TEC tests: source/target phases end-to-end."""

import pytest

from repro.core import Feam, FeamConfig
from repro.core.prediction import Determinant, PredictionMode
from repro.mpi.implementations import mpich2, open_mpi
from repro.sites.site import StackRequest
from repro.toolchain.compilers import CompilerFamily, Language


@pytest.fixture
def donor(make_site):
    return make_site("donor")


@pytest.fixture
def feam():
    return Feam()


def _build_app(site, stack_slug="openmpi-1.4-intel",
               language=Language.FORTRAN, name="app", **compile_kwargs):
    stack = site.find_stack(stack_slug)
    app = site.compile_mpi_program(name, language, stack, **compile_kwargs)
    path = f"/home/user/{name}"
    site.machine.fs.write(path, app.image, mode=0o755)
    return stack, app, path


class TestSourcePhase:
    def test_bundle_contents(self, donor, feam):
        stack, _app, path = _build_app(donor)
        bundle = feam.run_source_phase(donor, path,
                                       env=donor.env_with_stack(stack))
        assert bundle.created_at == "donor"
        assert bundle.description.mpi_implementation == "Open MPI"
        assert bundle.copied_count > 5
        assert bundle.copy_bytes > 1_000_000
        assert bundle.library("libc.so.6") is not None
        assert not bundle.library("libc.so.6").copied

    def test_hello_programs_compiled(self, donor, feam):
        stack, _app, path = _build_app(donor)
        bundle = feam.run_source_phase(donor, path,
                                       env=donor.env_with_stack(stack))
        assert bundle.hello is not None
        assert "c" in bundle.hello.images
        assert "fortran" in bundle.hello.images
        assert bundle.hello.best() == bundle.hello.images["c"]

    def test_summary_written(self, donor, feam):
        stack, _app, path = _build_app(donor)
        feam.run_source_phase(donor, path, env=donor.env_with_stack(stack))
        summary = donor.machine.fs.read_text(
            "/home/user/feam/out/source-app.txt")
        assert "Open MPI" in summary
        assert "libmpi.so.0" in summary

    def test_bundle_merging(self, donor, feam):
        stack, _app, path_a = _build_app(donor, name="app-a")
        _stack, _app, path_b = _build_app(
            donor, stack_slug="openmpi-1.4-gnu", name="app-b")
        env = donor.env_with_stack(stack)
        bundle_a = feam.run_source_phase(donor, path_a, env=env)
        bundle_b = feam.run_source_phase(
            donor, path_b, env=donor.env_with_stack(
                donor.find_stack("openmpi-1.4-gnu")))
        merged = bundle_a.merged_with(bundle_b)
        assert {r.soname for r in merged.libraries} == \
            {r.soname for r in bundle_a.libraries} | \
            {r.soname for r in bundle_b.libraries}


class TestTargetPhaseBasic:
    def test_ready_at_identical_site(self, donor, feam, make_site):
        twin = make_site("twin")
        _stack, app, _ = _build_app(donor)
        twin.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(twin, binary_path="/home/user/app")
        assert report.ready
        assert report.prediction.mode is PredictionMode.BASIC
        assert report.selected_stack_prefix == "/opt/openmpi-1.4-intel"

    def test_missing_intel_runtime_predicted(self, donor, feam, make_site):
        bare = make_site(
            "bare", vendor_compilers=(),
            stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
        _stack, app, _ = _build_app(donor)
        bare.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(bare, binary_path="/home/user/app")
        assert not report.ready
        assert "libifcore.so.5" in report.prediction.missing_libraries
        shared = report.prediction.determinant(Determinant.SHARED_LIBRARIES)
        assert shared.passed is False

    def test_no_matching_mpi_predicted(self, donor, feam, make_site):
        mpich_only = make_site(
            "mpichonly",
            stacks=(StackRequest(mpich2("1.4"), CompilerFamily.GNU),))
        _stack, app, _ = _build_app(donor)
        mpich_only.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(mpich_only,
                                       binary_path="/home/user/app")
        assert not report.ready
        assert report.prediction.determinant(
            Determinant.MPI_STACK).passed is False

    def test_libc_too_old_predicted(self, feam, make_site):
        new = make_site("new", libc_version="2.12",
                        system_gnu_version="4.4.5")
        old = make_site("old", libc_version="2.3.4",
                        system_gnu_version="3.4.6")
        _stack, app, _ = _build_app(new, stack_slug="openmpi-1.4-gnu",
                                    language=Language.C,
                                    glibc_ceiling=(2, 7))
        old.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(old, binary_path="/home/user/app")
        assert not report.ready
        assert report.prediction.determinant(
            Determinant.C_LIBRARY).passed is False
        # Short-circuit: MPI determinant never evaluated.
        assert report.prediction.determinant(
            Determinant.MPI_STACK).passed is None

    def test_misconfigured_stack_detected(self, donor, feam, make_site):
        broken = make_site("broken",
                           misconfigured=("openmpi-1.4-intel",
                                          "openmpi-1.4-gnu"))
        _stack, app, _ = _build_app(donor)
        broken.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(broken, binary_path="/home/user/app")
        assert not report.ready
        assert report.prediction.determinant(
            Determinant.MPI_STACK).passed is False

    def test_output_file_written(self, donor, feam, make_site):
        twin = make_site("twin2")
        _stack, app, _ = _build_app(donor)
        twin.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(twin, binary_path="/home/user/app",
                                       staging_tag="t1")
        text = twin.machine.fs.read_text(report.output_path)
        assert "FEAM target phase report" in text
        assert "READY" in text

    def test_requires_binary_or_bundle(self, feam, make_site):
        site = make_site("empty-args")
        with pytest.raises(ValueError):
            feam.run_target_phase(site)


class TestTargetPhaseExtended:
    def test_resolution_enables_readiness(self, donor, feam, make_site):
        bare = make_site(
            "bare2", vendor_compilers=(),
            stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
        stack, app, path = _build_app(donor)
        bundle = feam.run_source_phase(donor, path,
                                       env=donor.env_with_stack(stack))
        bare.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(bare, binary_path="/home/user/app",
                                       bundle=bundle, staging_tag="x1")
        assert report.prediction.mode is PredictionMode.EXTENDED
        assert report.ready
        assert report.prediction.requires_resolution
        assert report.resolution is not None and report.resolution.staged
        # And the binary genuinely loads in the produced environment.
        failure, _ = bare.machine.check_loadable(
            app.image, report.run_environment)
        assert failure is None

    def test_binary_not_needed_at_target(self, donor, feam, make_site):
        twin = make_site("twin3")
        stack, _app, path = _build_app(donor)
        bundle = feam.run_source_phase(donor, path,
                                       env=donor.env_with_stack(stack))
        report = feam.run_target_phase(twin, bundle=bundle,
                                       staging_tag="x2")
        assert report.ready

    def test_feam_cost_under_five_minutes(self, donor, feam, make_site):
        twin = make_site("twin4")
        stack, app, path = _build_app(donor)
        bundle = feam.run_source_phase(donor, path,
                                       env=donor.env_with_stack(stack))
        twin.machine.fs.write("/home/user/app", app.image, mode=0o755)
        report = feam.run_target_phase(twin, binary_path="/home/user/app",
                                       bundle=bundle, staging_tag="x3")
        assert report.feam_seconds < 300.0
