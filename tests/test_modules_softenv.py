"""Environment Modules and SoftEnv emulation tests."""

import pytest

from repro.sites.modules import (
    EnvironmentModules,
    NoModuleSystem,
    detect_module_system,
)
from repro.sites.softenv import SoftEnv
from repro.sysmodel.env import Environment
from repro.sysmodel.fs import VirtualFilesystem


@pytest.fixture
def fs():
    return VirtualFilesystem()


class TestEnvironmentModules:
    def test_absent_until_installed(self, fs):
        assert not EnvironmentModules(fs).is_present()
        assert detect_module_system(fs) is None

    def test_install_makes_present(self, fs):
        modules = EnvironmentModules(fs)
        modules.install()
        assert modules.is_present()
        assert detect_module_system(fs) is not None

    def test_avail_lists_nested_names(self, fs):
        modules = EnvironmentModules(fs)
        modules.install()
        modules.write_modulefile("openmpi/1.4-intel",
                                 [("PATH", "/opt/x/bin")])
        modules.write_modulefile("gcc/4.4.5", [("PATH", "/opt/gcc/bin")])
        assert modules.avail() == ["gcc/4.4.5", "openmpi/1.4-intel"]

    def test_load_applies_prepend_path(self, fs):
        modules = EnvironmentModules(fs)
        modules.install()
        modules.write_modulefile("openmpi/1.4-gnu", [
            ("PATH", "/opt/openmpi-1.4-gnu/bin"),
            ("LD_LIBRARY_PATH", "/opt/openmpi-1.4-gnu/lib"),
        ])
        env = Environment()
        modules.load("openmpi/1.4-gnu", env)
        assert env.path[0] == "/opt/openmpi-1.4-gnu/bin"
        assert env.ld_library_path == ["/opt/openmpi-1.4-gnu/lib"]
        assert modules.loaded(env) == ["openmpi/1.4-gnu"]

    def test_load_unknown_raises(self, fs):
        modules = EnvironmentModules(fs)
        modules.install()
        with pytest.raises(KeyError):
            modules.load("nope/1.0", Environment())

    def test_modulefile_is_parseable_text(self, fs):
        modules = EnvironmentModules(fs)
        modules.install()
        modules.write_modulefile("m/1", [("PATH", "/p")], description="demo")
        text = fs.read_text("/usr/share/Modules/modulefiles/m/1")
        assert text.startswith("#%Module1.0")
        assert "prepend-path PATH /p" in text
        assert "demo" in text


class TestSoftEnv:
    def test_absent_until_installed(self, fs):
        assert not SoftEnv(fs).is_present()

    def test_keys_roundtrip(self, fs):
        softenv = SoftEnv(fs)
        softenv.install()
        softenv.add_key("openmpi-1.4-intel", [
            ("PATH", "/opt/openmpi-1.4-intel/bin"),
            ("LD_LIBRARY_PATH", "/opt/openmpi-1.4-intel/lib")])
        softenv.add_key("another-key", [("PATH", "/x")])
        assert softenv.avail() == ["another-key", "openmpi-1.4-intel"]

    def test_load(self, fs):
        softenv = SoftEnv(fs)
        softenv.install()
        softenv.add_key("k", [("LD_LIBRARY_PATH", "/k/lib")])
        env = Environment()
        softenv.load("k", env)
        assert env.ld_library_path == ["/k/lib"]

    def test_load_unknown_raises(self, fs):
        softenv = SoftEnv(fs)
        softenv.install()
        with pytest.raises(KeyError):
            softenv.load("missing", Environment())


class TestNoModuleSystem:
    def test_noop_behaviour(self):
        none = NoModuleSystem()
        assert not none.is_present()
        assert none.avail() == []
        assert none.loaded(Environment()) == []
        with pytest.raises(KeyError):
            none.load("x", Environment())
