"""``feam`` subcommand exit codes and the bench regression gate.

The contract (pinned here, relied on by CI): 0 = success, 1 =
operational error (missing/unreadable input), 2 = SLO violation, 3 =
performance regression.  The trace-driven subcommands (``top``,
``diff-trace``, ``slo --trace``) run on synthetic JSONL traces, so
these tests never build sites.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

from repro import obs
from repro.__main__ import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SLO_VIOLATION,
    feam_main,
)

_REPO = pathlib.Path(__file__).resolve().parents[1]


def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression",
        _REPO / "benchmarks" / "check_regression.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_trace(path, slow=1.0, hit_rate=0.7):
    """A small matrix-shaped trace with a metrics snapshot line."""
    with obs.capture() as collector:
        collector.metrics.gauge("engine.cache.hit_rate").set(hit_rate)
        collector.metrics.gauge("matrix.unknown_cells.pct").set(0.0)
        collector.metrics.gauge("matrix.cells.total").set(4)
        tracer = collector.tracer
        with tracer.span("engine.matrix") as matrix:
            with tracer.span("engine.site", site="fir") as site:
                with tracer.span("engine.cell") as cell:
                    pass
                cell.wall_seconds = 0.010 * slow
            site.wall_seconds = 0.012 * slow
        matrix.wall_seconds = 0.015 * slow
        obs.export.write_jsonl(str(path), collector)
    return path


class TestTop:
    def test_flame_table_and_critical_path(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl")
        assert feam_main(["top", str(trace), "--critical-path"]) \
            == EXIT_OK
        out = capsys.readouterr().out
        assert "engine.cell" in out
        assert "critical path (wall clock):" in out

    def test_missing_file_is_failure(self, tmp_path, capsys):
        assert feam_main(["top", str(tmp_path / "nope.jsonl")]) \
            == EXIT_FAILURE
        assert "cannot read trace" in capsys.readouterr().err

    def test_malformed_trace_is_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert feam_main(["top", str(bad)]) == EXIT_FAILURE
        assert "malformed trace" in capsys.readouterr().err


class TestDiffTrace:
    def test_no_gate_always_ok(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl")
        b = write_trace(tmp_path / "b.jsonl", slow=4.0)
        assert feam_main(["diff-trace", str(a), str(b)]) == EXIT_OK

    def test_gate_passes_identical_traces(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl")
        assert feam_main(["diff-trace", str(a), str(a),
                          "--fail-above", "1.25"]) == EXIT_OK

    def test_gate_trips_on_slowdown(self, tmp_path, capsys):
        a = write_trace(tmp_path / "a.jsonl")
        b = write_trace(tmp_path / "b.jsonl", slow=2.0)
        assert feam_main(["diff-trace", str(a), str(b),
                          "--fail-above", "1.25"]) == EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().err

    def test_min_wall_ignores_noise_frames(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl")
        b = write_trace(tmp_path / "b.jsonl", slow=2.0)
        # Every frame is under 0.1s baseline, and the overall gate is
        # 100x, so a huge --min-wall silences the per-frame checks.
        assert feam_main(["diff-trace", str(a), str(b),
                          "--fail-above", "100", "--min-wall", "1.0"]) \
            == EXIT_OK

    def test_missing_either_side_is_failure(self, tmp_path):
        a = write_trace(tmp_path / "a.jsonl")
        assert feam_main(["diff-trace", str(a),
                          str(tmp_path / "gone.jsonl")]) == EXIT_FAILURE


class TestSlo:
    def test_recorded_trace_pass(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", hit_rate=0.9)
        assert feam_main(["slo", "--trace", str(trace)]) == EXIT_OK
        assert "all SLOs met" in capsys.readouterr().out

    def test_violation_exits_2(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", hit_rate=0.1)
        assert feam_main(["slo", "--trace", str(trace)]) \
            == EXIT_SLO_VIOLATION
        assert "FAIL" in capsys.readouterr().out

    def test_custom_rules_file_and_json_output(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl", hit_rate=0.7)
        rules = tmp_path / "rules.txt"
        rules.write_text("engine.cache.hit_rate >= 0.99\n")
        assert feam_main(["slo", "--trace", str(trace),
                          "--rules", str(rules), "--json"]) \
            == EXIT_SLO_VIOLATION
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["results"][0]["observed"] == 0.7

    def test_bad_rules_file_is_failure(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "t.jsonl")
        rules = tmp_path / "rules.txt"
        rules.write_text("not a rule at all !!\n")
        assert feam_main(["slo", "--trace", str(trace),
                          "--rules", str(rules)]) == EXIT_FAILURE
        assert "bad rules file" in capsys.readouterr().err

    def test_missing_rules_file_is_failure(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl")
        assert feam_main(["slo", "--trace", str(trace),
                          "--rules", str(tmp_path / "none.txt")]) \
            == EXIT_FAILURE

    def test_missing_trace_is_failure(self, tmp_path):
        assert feam_main(["slo", "--trace",
                          str(tmp_path / "none.jsonl")]) == EXIT_FAILURE


class TestExitCodesAreDistinct:
    def test_the_contract(self):
        codes = {EXIT_OK, EXIT_FAILURE, EXIT_SLO_VIOLATION,
                 EXIT_REGRESSION}
        assert codes == {0, 1, 2, 3}


class TestCheckRegression:
    BASE = {
        "seed": 20130101, "binaries": 4, "sites": 5, "cells": 20,
        "cold_seconds": 0.6, "warm_seconds": 0.003,
        "reference_seconds": 0.12,
        "traced_seconds": 0.13, "warm_speedup": 186.8,
        "traced_overhead": 0.08, "trace_spans": 195,
        "cache": {"evaluation_hits": 60, "evaluation_misses": 20},
    }

    @pytest.fixture(scope="class")
    def gate(self):
        return _load_check_regression()

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_passes(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", self.BASE)
        assert gate.main(["--baseline", base, "--current", base]) == 0

    def test_injected_2x_warm_slowdown_fails(self, gate, tmp_path,
                                             capsys):
        base = self._write(tmp_path, "base.json", self.BASE)
        slowed = dict(self.BASE, warm_seconds=self.BASE["warm_seconds"]
                      * 2)
        curr = self._write(tmp_path, "curr.json", slowed)
        assert gate.main(["--baseline", base, "--current", curr]) \
            == EXIT_REGRESSION
        assert "warm_seconds" in capsys.readouterr().err

    def test_within_tolerance_passes(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", self.BASE)
        near = dict(self.BASE,
                    warm_seconds=self.BASE["warm_seconds"] * 1.2,
                    cold_seconds=self.BASE["cold_seconds"] * 0.9)
        curr = self._write(tmp_path, "curr.json", near)
        assert gate.main(["--baseline", base, "--current", curr]) == 0

    def test_shape_drift_fails_even_when_faster(self, gate, tmp_path,
                                                capsys):
        base = self._write(tmp_path, "base.json", self.BASE)
        drifted = dict(self.BASE, cells=10, warm_seconds=0.001)
        curr = self._write(tmp_path, "curr.json", drifted)
        assert gate.main(["--baseline", base, "--current", curr]) \
            == EXIT_REGRESSION
        assert "cells" in capsys.readouterr().err

    def test_cache_counter_drift_fails(self, gate, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", self.BASE)
        drifted = dict(self.BASE,
                       cache={"evaluation_hits": 0,
                              "evaluation_misses": 80})
        curr = self._write(tmp_path, "curr.json", drifted)
        assert gate.main(["--baseline", base, "--current", curr]) \
            == EXIT_REGRESSION
        assert "cache" in capsys.readouterr().err

    def test_missing_current_is_operational_failure(self, gate,
                                                    tmp_path, capsys):
        base = self._write(tmp_path, "base.json", self.BASE)
        assert gate.main(["--baseline", base,
                          "--current", str(tmp_path / "no.json")]) == 1
        assert "bench-matrix" in capsys.readouterr().err

    def test_speedup_collapse_fails(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", self.BASE)
        # Same timings but the warm cache stopped helping.
        collapsed = dict(self.BASE, warm_speedup=2.0)
        curr = self._write(tmp_path, "curr.json", collapsed)
        assert gate.main(["--baseline", base, "--current", curr]) \
            == EXIT_REGRESSION

    def test_faulted_benchmark_run_fails(self, gate, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", self.BASE)
        # Faults in a no-fault benchmark poison the timings -- gated
        # independently of the baseline (which predates the keys).
        poisoned = dict(self.BASE, faults_injected=3)
        curr = self._write(tmp_path, "curr.json", poisoned)
        assert gate.main(["--baseline", base, "--current", curr]) \
            == EXIT_REGRESSION
        assert "faults_injected" in capsys.readouterr().err

    def test_retry_poisoned_run_fails(self, gate, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", self.BASE)
        poisoned = dict(self.BASE, retries=2)
        curr = self._write(tmp_path, "curr.json", poisoned)
        assert gate.main(["--baseline", base, "--current", curr]) \
            == EXIT_REGRESSION
        assert "retries" in capsys.readouterr().err

    def test_explicit_zero_clean_counters_pass(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", self.BASE)
        clean = dict(self.BASE, faults_injected=0, retries=0)
        curr = self._write(tmp_path, "curr.json", clean)
        assert gate.main(["--baseline", base, "--current", curr]) == 0

    def test_profile_artifact_from_trace(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", self.BASE)
        trace = write_trace(tmp_path / "t.jsonl")
        out = tmp_path / "flame.json"
        assert gate.main(["--baseline", base, "--current", base,
                          "--trace", str(trace),
                          "--profile-out", str(out)]) == 0
        profile = json.loads(out.read_text())
        assert profile["span_count"] == 3
        assert "engine.cell" in profile["frames"]

    def test_committed_baseline_has_the_gated_shape(self, gate):
        payload = json.loads(
            (_REPO / "benchmarks" / "BENCH_baseline.json").read_text())
        for key in gate.SHAPE_KEYS + gate.TIMING_KEYS:
            assert key in payload, f"baseline misses {key}"
        assert payload["warm_speedup"] > 1


class TestBenchHistory:
    def test_append_history_entry(self, tmp_path):
        spec = importlib.util.spec_from_file_location(
            "emit_bench", _REPO / "benchmarks" / "emit_bench.py")
        emit_bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(emit_bench)
        payload = dict(TestCheckRegression.BASE)
        history = tmp_path / "BENCH_history.jsonl"
        entry = emit_bench.append_history(payload, str(history))
        emit_bench.append_history(payload, str(history))
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        decoded = json.loads(lines[0])
        assert decoded["warm_seconds"] == payload["warm_seconds"]
        assert decoded["ts"].endswith("Z")  # timestamped, UTC
        assert entry["cells"] == payload["cells"]

    def test_history_file_is_tracked_and_parsable(self):
        path = _REPO / "benchmarks" / "BENCH_history.jsonl"
        lines = path.read_text().splitlines()
        assert lines, "BENCH_history.jsonl must not be empty"
        for line in lines:
            entry = json.loads(line)
            assert "ts" in entry
            if entry.get("kind") == "fleet":
                assert "cells_per_second" in entry
            else:
                assert "warm_seconds" in entry
