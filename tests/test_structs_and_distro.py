"""SymbolVersion semantics, dynamic-symbol rendering, distro files."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.elf.structs import DynamicSymbol, SymbolVersion
from repro.sysmodel import distro as distros
from repro.sysmodel.fs import VirtualFilesystem


class TestSymbolVersion:
    @pytest.mark.parametrize("name,namespace,components", [
        ("GLIBC_2.3.4", "GLIBC", (2, 3, 4)),
        ("GLIBC_2.12", "GLIBC", (2, 12)),
        ("GFORTRAN_1.0", "GFORTRAN", (1, 0)),
        ("GLIBCXX_3.4.13", "GLIBCXX", (3, 4, 13)),
        ("CXXABI_1.3", "CXXABI", (1, 3)),
    ])
    def test_parsing(self, name, namespace, components):
        version = SymbolVersion(name)
        assert version.namespace == namespace
        assert version.components == components

    def test_non_version_names(self):
        assert SymbolVersion("GLIBC_PRIVATE").namespace is None
        assert SymbolVersion("GLIBC_PRIVATE").components == ()
        assert SymbolVersion("justtext").components == ()

    def test_is_glibc(self):
        assert SymbolVersion("GLIBC_2.5").is_glibc()
        assert not SymbolVersion("GLIBCXX_3.4").is_glibc()
        assert not SymbolVersion("GLIBC_PRIVATE").is_glibc()

    def test_ordering_numeric(self):
        assert SymbolVersion("GLIBC_2.9") < SymbolVersion("GLIBC_2.10")
        assert SymbolVersion("GLIBC_2.3.4") < SymbolVersion("GLIBC_2.4")

    def test_ordering_across_namespaces_is_stable(self):
        a, b = SymbolVersion("AAA_1.0"), SymbolVersion("BBB_1.0")
        assert (a < b) != (b < a)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 99), st.integers(0, 99),
           st.integers(0, 99), st.integers(0, 99))
    def test_ordering_matches_tuples(self, a1, a2, b1, b2):
        a = SymbolVersion(f"GLIBC_{a1}.{a2}")
        b = SymbolVersion(f"GLIBC_{b1}.{b2}")
        assert (a < b) == ((a1, a2) < (b1, b2))


class TestDynamicSymbolRender:
    def test_import(self):
        line = DynamicSymbol("printf", False, "GLIBC_2.0").render()
        assert "U printf@GLIBC_2.0" in line

    def test_export(self):
        line = DynamicSymbol("main", True).render()
        assert "T main" in line
        assert line.startswith("0" * 16)


class TestDistros:
    def test_pretty_names(self):
        assert "CentOS release 4.9" in distros.CENTOS_4_9.pretty_name
        assert "Santiago" in distros.RHEL_6_1.pretty_name
        assert "Tikanga" in distros.RHEL_5_6.pretty_name
        assert "SUSE" in distros.SLES_11.pretty_name

    def test_release_file_paths(self):
        assert distros.CENTOS_5_6.release_file == "/etc/redhat-release"
        assert distros.SLES_11.release_file == "/etc/SuSE-release"

    def test_materialise(self):
        fs = VirtualFilesystem()
        distros.SLES_11.materialise(fs)
        assert "VERSION = 11" in fs.read_text("/etc/SuSE-release")
        assert "PATCHLEVEL = 1" in fs.read_text("/etc/SuSE-release")
        proc = fs.read_text("/proc/version")
        assert proc.startswith("Linux version 2.6.32.59")
        assert fs.is_file("/etc/system-release")

    def test_proc_version_carries_gcc_banner(self):
        text = distros.CENTOS_4_9.proc_version_text()
        assert "gcc version 3.4.6" in text
