"""Robustness fuzzing: corrupted images never crash the parser.

The parser's contract is: valid ELF parses; anything else raises
:class:`ElfError` (or parses as best it can) -- never an uncontrolled
IndexError/struct.error/UnicodeDecodeError.  FEAM runs on untrusted
binaries, so this matters.
"""

from hypothesis import given, settings, strategies as st

from repro.elf import BinarySpec, ElfError, parse_elf, write_elf
from repro.elf.structs import DynamicSymbol

_BASE_IMAGE = write_elf(BinarySpec(
    needed=("libmpi.so.0", "libm.so.6", "libc.so.6"),
    version_requirements={"libc.so.6": ("GLIBC_2.2.5", "GLIBC_2.3.4")},
    version_definitions=(),
    comment=("GCC: (GNU) 4.1.2",),
    symbols=(DynamicSymbol("main", True),
             DynamicSymbol("printf", False, "GLIBC_2.2.5")),
    payload_size=256))


def _try_parse(data: bytes) -> None:
    try:
        elf = parse_elf(data)
        # If it parsed, the parsed structures must be traversable.
        _ = elf.dynamic.needed
        _ = elf.version_requirements
        _ = elf.version_definitions
        _ = elf.symbols
        _ = elf.comment
    except ElfError:
        pass  # the sanctioned failure mode


@settings(max_examples=300, deadline=None)
@given(st.integers(0, len(_BASE_IMAGE) - 1), st.integers(0, 255))
def test_single_byte_corruption(offset, value):
    mutated = bytearray(_BASE_IMAGE)
    mutated[offset] = value
    _try_parse(bytes(mutated))


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.integers(0, len(_BASE_IMAGE) - 1),
                          st.integers(0, 255)),
                min_size=2, max_size=16))
def test_multi_byte_corruption(mutations):
    mutated = bytearray(_BASE_IMAGE)
    for offset, value in mutations:
        mutated[offset] = value
    _try_parse(bytes(mutated))


@settings(max_examples=100, deadline=None)
@given(st.integers(0, len(_BASE_IMAGE)))
def test_truncation(length):
    _try_parse(_BASE_IMAGE[:length])


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=0, max_size=512))
def test_random_bytes(data):
    _try_parse(data)


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_valid_magic_random_tail(tail):
    _try_parse(b"\x7fELF" + tail)
