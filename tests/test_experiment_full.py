"""The full Section VI evaluation: the headline reproduction claims.

One complete experiment run (module-scoped, ~30 s) backs every assertion
in this file.  The claims mirror the paper's published results; exact
decimals differ because the substrate is a simulation, but the shapes --
who wins, by roughly what factor, which failures dominate -- must hold.
"""

import pytest

from repro.corpus.benchmarks import Suite
from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.evaluation.metrics import (
    accuracy_table,
    failure_breakdown,
    missing_library_share,
    resolution_table,
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(ExperimentConfig())


def test_test_set_sizes(result):
    """Section VI.A: 110 NPB and 147 SPEC binaries."""
    assert result.corpus.counts() == {Suite.NPB: 110, Suite.SPEC: 147}


def test_every_reported_migration_has_matching_impl(result):
    """Only sites with matching MPI implementations are reported."""
    sites = {s.name: s for s in result.sites}
    for record in result.records:
        binary = result.corpus.find(record.binary_id)
        kinds = sites[record.target_site].stacks_of_kind(
            binary.stack_spec.kind)
        assert kinds, record.binary_id


def test_mpi_identification_100_percent(result):
    """Section VI.B: 100% accurate at identifying the MPI implementation."""
    from repro.core.description import identify_mpi_implementation
    from repro.elf import describe_elf
    for binary in result.corpus.binaries:
        info = describe_elf(binary.image)
        assert identify_mpi_implementation(info.needed) == \
            binary.stack_spec.kind.value


def test_table3_accuracy_over_90_percent(result):
    """Headline: >90% accuracy in every suite and mode (Table III)."""
    acc = accuracy_table(result.records)
    for suite in Suite:
        assert acc[suite]["basic"] > 0.90, (suite, acc)
        assert acc[suite]["extended"] > 0.90, (suite, acc)


def test_table3_extended_beats_basic(result):
    """Extended prediction adds accuracy (Table III: 94->99, 92->93)."""
    acc = accuracy_table(result.records)
    for suite in Suite:
        assert acc[suite]["extended"] >= acc[suite]["basic"], (suite, acc)


def test_table4_about_half_execute_before_resolution(result):
    """'Around half of the MPI application binaries were able to execute
    at target sites after migration' (paper: NAS 58%, SPEC 47%)."""
    table = resolution_table(result.records)
    for suite in Suite:
        assert 0.40 <= table[suite]["before"] <= 0.65, (suite, table)
    # NAS fares somewhat better than SPEC, as in the paper.
    assert table[Suite.NPB]["before"] >= table[Suite.SPEC]["before"] - 0.02


def test_table4_resolution_increases_successes_by_about_a_third(result):
    """Resolution enables roughly a third more successes (33% / 39%)."""
    table = resolution_table(result.records)
    for suite in Suite:
        assert 0.20 <= table[suite]["increase"] <= 0.55, (suite, table)
        assert table[suite]["after"] > table[suite]["before"]


def test_missing_libraries_dominate_failures(result):
    """'Of the failing jobs, more than half were missing shared
    libraries.'"""
    assert missing_library_share(result.records) > 0.5


def test_failure_taxonomy_complete(result):
    """The remaining failures are C-library, FP/ABI and system errors."""
    causes = set(failure_breakdown(result.records, "before"))
    assert "missing-shared-library" in causes
    assert "c-library-version" in causes
    assert "system-error" in causes
    assert causes <= {
        "missing-shared-library", "c-library-version", "system-error",
        "abi-incompatibility", "floating-point-exception",
        "mpi-stack-unusable"}


def test_extended_mispredictions_are_system_errors(result):
    """Section VI.C: 'Our model was unable to predict failures due to
    system errors' -- and (in this reproduction) nothing else."""
    for record in result.records:
        if not record.extended_correct:
            assert record.extended_ready  # never pessimistic
            assert record.actual_after_failure == "system-error", record


def test_feam_phases_under_five_minutes(result):
    """'Both FEAM's source and target phases always took less than five
    minutes to complete.'"""
    assert result.max_source_phase_seconds < 300
    assert result.max_target_phase_seconds < 300


def test_bundle_sizes_tens_of_megabytes(result):
    """'A bundle of shared library copies composed by FEAM's source phase
    averaged 45M in size' -- ours land in the same tens-of-MB regime."""
    sizes = list(result.bundle_bytes_by_site.values())
    assert len(sizes) == 5
    average = sum(sizes) / len(sizes)
    assert 10_000_000 < average < 100_000_000


def test_resolution_fixes_about_half_of_missing_lib_failures(result):
    """'Our resolution techniques automatically enabled execution for
    about half of the binaries that would have otherwise failed due to
    missing shared libraries.'"""
    missing_before = [r for r in result.records
                      if r.actual_before_failure == "missing-shared-library"]
    fixed = [r for r in missing_before if r.actual_after_ok]
    ratio = len(fixed) / len(missing_before)
    assert 0.35 <= ratio <= 0.75, ratio


def test_experiment_is_deterministic(result):
    again = run_experiment(ExperimentConfig())
    assert len(again.records) == len(result.records)
    for a, b in zip(again.records, result.records):
        assert a.binary_id == b.binary_id
        assert a.basic_ready == b.basic_ready
        assert a.extended_ready == b.extended_ready
        assert a.actual_before_ok == b.actual_before_ok
        assert a.actual_after_ok == b.actual_after_ok
