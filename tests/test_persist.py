"""The persistent evaluation cache: warm starts, quarantine, chaos.

Covers the on-disk tier end to end: payload round-trips, the store's
durability classification (torn tail vs torn write vs checksum vs
newer schema), LRU/size compaction, engine read-through/write-behind
across *fresh engine instances*, the matrix-journal identity guard,
the ``feam cache`` CLI verbs, and a real SIGKILL crash-recovery run
(subprocess) that resumes and warm-hits to a byte-identical grid.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core import persist
from repro.core.engine import EngineBinary, EvaluationEngine
from repro.core.persist import PersistentStore
from repro.core.resilience import MatrixJournal
from repro.sysmodel import faults
from repro.toolchain.compilers import Language
from repro.util.jsonl import dump_line

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def compiled_app(make_site):
    donor = make_site("persist-donor")
    stack = donor.find_stack("openmpi-1.4-intel")
    return donor.compile_mpi_program("p-app", Language.FORTRAN, stack)


def grid_lines(rendered: str) -> list[str]:
    """The rendered matrix without its run-varying ``cache:`` line."""
    return [line for line in rendered.splitlines()
            if not line.startswith("cache:")]


# -- payload round-trips ---------------------------------------------------------


class TestPayloadRoundTrips:
    def test_description_roundtrip(self, make_site, compiled_app):
        site = make_site("pp-desc")
        site.machine.fs.write("/home/user/p-app", compiled_app.image,
                              mode=0o755)
        engine = EvaluationEngine()
        description, _hit = engine.describe(site, "/home/user/p-app")
        payload = persist.description_to_payload(description)
        json.loads(dump_line(payload))  # JSON-serialisable
        assert persist.description_from_payload(payload) == description

    def test_environment_roundtrip(self, make_site):
        site = make_site("pp-env")
        engine = EvaluationEngine()
        environment, _hit, _retry = engine._discover(site)
        payload = persist.environment_to_payload(environment)
        assert persist.environment_from_payload(payload) == environment

    def test_report_roundtrip_is_summary_grade(self, make_site,
                                               compiled_app):
        site = make_site("pp-rep")
        engine = EvaluationEngine()
        report = engine.evaluate_cell(site, image=compiled_app.image,
                                      binary_id="p-app")
        restored = persist.report_from_payload(
            persist.report_to_payload(report))
        assert restored.ready == report.ready
        assert restored.prediction.mode == report.prediction.mode
        assert [(r.key, r.outcome) for r in
                restored.prediction.determinants] == \
            [(r.key, r.outcome) for r in report.prediction.determinants]
        assert restored.prediction.reasons == report.prediction.reasons
        assert restored.environment == report.environment
        assert restored.feam_seconds == pytest.approx(
            report.feam_seconds, abs=1e-6)
        # Staging artefacts are deliberately not persisted.
        assert restored.resolution is None
        assert restored.run_environment is None


# -- the store -------------------------------------------------------------------


class TestStoreBasics:
    def test_store_load_roundtrip(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.store("evaluation", "k1", {"x": 1}, fingerprint="fp")
        assert store.load("evaluation", "k1", fingerprint="fp") == \
            {"x": 1}
        assert store.load("evaluation", "nope") is None
        store.close()

    def test_survives_process_boundary(self, tmp_path):
        with PersistentStore(str(tmp_path)) as store:
            store.store("description", "k", {"deep": {"n": [1, 2]}})
        second = PersistentStore(str(tmp_path))
        assert second.load("description", "k") == {"deep": {"n": [1, 2]}}
        assert second.quarantined == {}
        second.close()

    def test_fingerprint_mismatch_is_stale_not_served(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.store("evaluation", "k", {"x": 1}, fingerprint="old")
        assert store.load("evaluation", "k", fingerprint="new") is None
        # Dropped, not quarantined: staleness is not corruption.
        assert store.quarantined == {}
        assert store.load("evaluation", "k", fingerprint="old") is None
        store.close()

    def test_tombstone_survives_reopen(self, tmp_path):
        with PersistentStore(str(tmp_path)) as store:
            store.store("discovery", "k", {"x": 1})
            assert store.drop("discovery", "k") is True
        second = PersistentStore(str(tmp_path))
        assert second.load("discovery", "k") is None
        second.close()

    def test_newest_record_wins(self, tmp_path):
        with PersistentStore(str(tmp_path)) as store:
            store.store("evaluation", "k", {"v": 1})
            store.store("evaluation", "k", {"v": 2})
        second = PersistentStore(str(tmp_path))
        assert second.load("evaluation", "k") == {"v": 2}
        second.close()

    def test_stats_counts_layers(self, tmp_path):
        store = PersistentStore(str(tmp_path))
        store.store("description", "a", {})
        store.store("evaluation", "b", {})
        store.store("evaluation", "c", {})
        stats = store.stats()
        assert stats["layers"]["description"]["entries"] == 1
        assert stats["layers"]["evaluation"]["entries"] == 2
        assert stats["entries"] == 3
        assert stats["schema"] == persist.SCHEMA_VERSION
        store.close()


class TestDurabilityClassification:
    def seeded(self, tmp_path, keys=("k1", "k2", "k3")) -> str:
        with PersistentStore(str(tmp_path)) as store:
            for key in keys:
                store.store("evaluation", key, {"key": key})
        return str(tmp_path / "evaluation.jsonl")

    def test_torn_tail_is_skipped_not_quarantined(self, tmp_path):
        path = self.seeded(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "layer": "evalua')  # kill -9
        store = PersistentStore(str(tmp_path))
        assert store.load("evaluation", "k1") == {"key": "k1"}
        assert store.torn_tail == 1
        assert store.quarantined == {}
        store.close()

    def test_midfile_garbage_is_quarantined(self, tmp_path):
        path = self.seeded(tmp_path)
        lines = Path(path).read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        Path(path).write_text("\n".join(lines) + "\n")
        with obs.capture() as collector:
            store = PersistentStore(str(tmp_path))
            assert store.load("evaluation", "k1") == {"key": "k1"}
            assert store.load("evaluation", "k3") == {"key": "k3"}
            store.close()
        assert store.quarantined == {"torn-write": 1}
        counters = collector.metrics.to_dict()["counters"]
        assert counters["persist.cache.quarantined"] == 1
        assert counters["persist.cache.quarantined.torn-write"] == 1

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        path = self.seeded(tmp_path)
        text = Path(path).read_text().replace('"key": "k2"',
                                              '"key": "kX"', 1)
        Path(path).write_text(text)
        store = PersistentStore(str(tmp_path))
        assert store.load("evaluation", "k2") is None
        assert store.quarantined == {"checksum": 1}
        store.close()

    def test_newer_schema_is_quarantined(self, tmp_path):
        self.seeded(tmp_path, keys=("k1",))
        record = {"schema": persist.SCHEMA_VERSION + 1,
                  "layer": "evaluation", "key": "future",
                  "payload": {}, "sum": "whatever"}
        with open(tmp_path / "evaluation.jsonl", "a",
                  encoding="utf-8") as handle:
            handle.write(dump_line(record) + "\n")
            handle.write(dump_line({"pad": True}) + "\n")
        store = PersistentStore(str(tmp_path))
        assert store.load("evaluation", "future") is None
        assert store.load("evaluation", "k1") == {"key": "k1"}
        assert store.quarantined["newer-schema"] == 1
        store.close()

    def test_verify_reports_and_compact_repairs(self, tmp_path):
        path = self.seeded(tmp_path)
        lines = Path(path).read_text().splitlines()
        lines[1] = lines[1][:-10]
        Path(path).write_text("\n".join(lines) + "\n")
        store = PersistentStore(str(tmp_path))
        report = store.verify()
        assert report["ok"] is False
        summary = store.compact()
        assert summary["evaluation"]["kept"] == 2
        clean = store.verify()
        assert clean["ok"] is True
        store.close()

    def test_clear_removes_everything(self, tmp_path):
        self.seeded(tmp_path)
        store = PersistentStore(str(tmp_path))
        assert store.clear() == 3
        assert store.load("evaluation", "k1") is None
        assert not (tmp_path / "evaluation.jsonl").exists()
        store.close()


class TestEvictionAndCompaction:
    def test_compaction_dedupes_superseded_records(self, tmp_path):
        with PersistentStore(str(tmp_path)) as store:
            for round_no in range(3):
                for key in ("a", "b"):
                    store.store("evaluation", key, {"round": round_no})
            store.compact()
        lines = (tmp_path / "evaluation.jsonl").read_text().splitlines()
        assert len(lines) == 2  # one line per live key
        second = PersistentStore(str(tmp_path))
        assert second.load("evaluation", "a") == {"round": 2}
        second.close()

    def test_byte_cap_evicts_least_recently_used_first(self, tmp_path):
        store = PersistentStore(str(tmp_path), max_bytes=100_000)
        for index in range(10):
            store.store("evaluation", f"k{index}", {"i": index})
        # Touch k0 so it is the most recently used.
        assert store.load("evaluation", "k0") is not None
        record_bytes = len(dump_line({
            "schema": 1, "layer": "evaluation", "key": "k0",
            "fingerprint": None, "payload": {"i": 0},
            "sum": persist.record_checksum(
                "evaluation", "k0", None, {"i": 0})})) + 1
        store.max_bytes = record_bytes * 3 + 2
        with obs.capture() as collector:
            store.compact()
        survivors = PersistentStore(str(tmp_path))
        assert survivors.load("evaluation", "k0") is not None
        assert survivors.load("evaluation", "k1") is None
        counters = collector.metrics.to_dict()["counters"]
        assert counters["persist.cache.evicted"] == 7
        store.close()
        survivors.close()

    def test_over_cap_store_compacts_inline(self, tmp_path):
        store = PersistentStore(str(tmp_path), max_bytes=400)
        for index in range(20):
            store.store("evaluation", "same-key", {"i": index})
        # Appends crossed the cap repeatedly; compaction kept the
        # segment at one live record.
        lines = (tmp_path / "evaluation.jsonl").read_text().splitlines()
        assert len(lines) <= 3
        assert store.load("evaluation", "same-key") == {"i": 19}
        store.close()


# -- chaos fault kinds ------------------------------------------------------------


class TestCacheFaults:
    def test_torn_write_fault_degrades_to_miss_on_reload(self, tmp_path):
        plan = faults.FaultPlan.parse(
            "cache-torn-write @ * rate=1.0 persistent", seed=3)
        with faults.injecting(plan):
            with PersistentStore(str(tmp_path)) as store:
                store.store("evaluation", "k", {"x": 1})
        second = PersistentStore(str(tmp_path))
        assert second.load("evaluation", "k") is None
        # The single torn line is the segment tail: skipped, counted.
        assert second.torn_tail == 1
        second.close()

    def test_corruption_fault_quarantines_at_read(self, tmp_path):
        with PersistentStore(str(tmp_path)) as store:
            store.store("evaluation", "k", {"x": 1})
        plan = faults.FaultPlan.parse(
            "cache-corruption @ * rate=1.0 persistent", seed=3)
        with faults.injecting(plan):
            second = PersistentStore(str(tmp_path))
            assert second.load("evaluation", "k") is None
            second.close()
        assert second.quarantined == {"cache-corruption": 1}

    def test_cache_profile_names_both_kinds(self):
        plan = faults.FaultPlan.profile("cache", seed=9)
        kinds = {spec.kind for spec in plan.specs}
        assert kinds == {faults.FaultKind.CACHE_TORN_WRITE,
                         faults.FaultKind.CACHE_CORRUPTION}


# -- engine integration -----------------------------------------------------------


class TestEngineWarmStart:
    def run_matrix(self, make_site, image, store, names=("wa", "wb")):
        engine = EvaluationEngine(persist=store)
        sites = [make_site(name) for name in names]
        result = engine.evaluate_matrix(
            [EngineBinary("p-app", image)], sites)
        engine.close()
        return engine, result

    def test_fresh_engine_warm_hits_every_layer(self, tmp_path,
                                                make_site, compiled_app):
        cold_store = PersistentStore(str(tmp_path))
        _, cold = self.run_matrix(make_site, compiled_app.image,
                                  cold_store)
        assert all(not c.report.cache.evaluation_hit
                   for c in cold.cells)

        warm_store = PersistentStore(str(tmp_path))
        engine, warm = self.run_matrix(make_site, compiled_app.image,
                                       warm_store)
        assert all(c.report.cache.evaluation_hit for c in warm.cells)
        assert all(c.report.cache.tier == "disk" for c in warm.cells)
        assert engine.stats.evaluation_hits == 2
        assert engine.stats.evaluation_misses == 0
        assert engine.stats.discovery_misses == 0
        assert grid_lines(warm.render()) == grid_lines(cold.render())

    def test_memory_hit_outranks_disk(self, tmp_path, make_site,
                                      compiled_app):
        store = PersistentStore(str(tmp_path))
        engine = EvaluationEngine(persist=store)
        site = make_site("mt")
        first = engine.evaluate_cell(site, image=compiled_app.image,
                                     binary_id="p-app")
        assert first.cache.tier is None
        again = engine.evaluate_cell(site, image=compiled_app.image,
                                     binary_id="p-app")
        assert again.cache.tier == "memory"
        assert store.disk_hits == 0
        engine.close()

    def test_poisoned_cache_recomputes_identical_outcomes(
            self, tmp_path, make_site, compiled_app):
        cold_store = PersistentStore(str(tmp_path))
        _, cold = self.run_matrix(make_site, compiled_app.image,
                                  cold_store)
        plan = faults.FaultPlan.parse(
            "cache-corruption @ * rate=1.0 persistent", seed=5)
        with obs.capture() as collector:
            with faults.injecting(plan):
                poisoned_store = PersistentStore(str(tmp_path))
                _, poisoned = self.run_matrix(
                    make_site, compiled_app.image, poisoned_store)
        # Every stored record quarantined -> full recomputation -- and
        # the matrix outcomes are unchanged.
        counters = collector.metrics.to_dict()["counters"]
        assert counters["persist.cache.quarantined"] > 0
        assert all(not c.report.cache.evaluation_hit
                   for c in poisoned.cells)
        assert grid_lines(poisoned.render()) == grid_lines(cold.render())
        assert [c.outcome_word for c in poisoned.cells] == \
            [c.outcome_word for c in cold.cells]

    def test_quarantine_trips_the_critical_slo_rule(self):
        from repro.obs.slo import DEFAULT_RULES, evaluate
        with obs.capture() as collector:
            obs.counter("persist.cache.quarantined").inc()
        report = evaluate(DEFAULT_RULES, collector.metrics.to_dict())
        failed = [r for r in report.results if r.status == "fail"]
        assert any(r.rule.metric == "persist.cache.quarantined"
                   and r.rule.severity == "critical" for r in failed)

    def test_refresh_site_supersedes_stored_discovery(
            self, tmp_path, make_site, compiled_app):
        store = PersistentStore(str(tmp_path))
        engine = EvaluationEngine(persist=store)
        site = make_site("rf")
        engine.evaluate_cell(site, image=compiled_app.image,
                             binary_id="p-app")
        before = engine.fingerprint_for(site)
        # An OS upgrade lands on the site.
        site.machine.fs.write_text(
            "/etc/redhat-release", "CentOS release 6.2 (Final)\n")
        assert engine.refresh_site(site) is True
        after = engine.fingerprint_for(site)
        assert after != before
        engine.close()
        # A fresh engine warm-loads the *refreshed* environment: the
        # re-discovery superseded the stored record (newest wins).
        warm = EvaluationEngine(persist=PersistentStore(str(tmp_path)))
        twin = make_site("rf")
        _environment, hit, _retry = warm._discover(twin)
        assert hit is True
        assert warm.fingerprint_for(twin) == after
        warm.close()


# -- the matrix-journal identity guard (regression) -------------------------------


class TestJournalIdentityGuard:
    IDENTITY = {"config_fingerprint": "abc123", "sites_spec": "paper",
                "seed": 7}

    def write_journal(self, path, identity):
        with MatrixJournal(str(path), header=identity) as journal:
            journal.record({"binary": "b1", "site": "s1",
                            "outcome": "ready", "ready": True})

    def test_matching_identity_resumes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_journal(path, self.IDENTITY)
        loaded = MatrixJournal.load(str(path), expect=self.IDENTITY)
        assert ("b1", "s1") in loaded

    def test_mismatched_identity_refuses_to_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_journal(path, self.IDENTITY)
        for key, value in (("config_fingerprint", "zzz"),
                           ("sites_spec", "fleet:n=5"), ("seed", 8)):
            with pytest.raises(ValueError, match=key):
                MatrixJournal.load(str(path),
                                   expect={**self.IDENTITY, key: value})

    def test_headerless_legacy_journal_still_loads(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        with MatrixJournal(str(path)) as journal:  # no header
            journal.record({"binary": "b1", "site": "s1"})
        loaded = MatrixJournal.load(str(path), expect=self.IDENTITY)
        assert ("b1", "s1") in loaded

    def test_header_written_once_and_not_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self.write_journal(path, self.IDENTITY)
        with MatrixJournal(str(path), header=self.IDENTITY) as journal:
            assert journal.written == 0
            journal.record({"binary": "b2", "site": "s1"})
            assert journal.written == 1
        lines = path.read_text().splitlines()
        assert sum(1 for line in lines
                   if "journal_header" in line) == 1

    def test_cli_refuses_mismatched_journal(self, capsys, tmp_path):
        from repro.__main__ import EXIT_FAILURE, feam_main
        journal = tmp_path / "j.jsonl"
        assert feam_main(["matrix", "--binaries", "1", "--seed", "7",
                          "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = feam_main(["matrix", "--binaries", "1", "--seed", "8",
                          "--resume", str(journal)])
        captured = capsys.readouterr()
        assert code == EXIT_FAILURE
        assert "refusing to resume" in captured.err


# -- the `feam cache` CLI ----------------------------------------------------------


class TestCacheCli:
    def run(self, capsys, *argv):
        from repro.__main__ import feam_main
        code = feam_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_requires_a_directory(self, capsys):
        code, _out, err = self.run(capsys, "cache", "stats")
        assert code == 1
        assert "no cache directory" in err

    def test_stats_verify_compact_clear_cycle(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _out, _err = self.run(
            capsys, "matrix", "--binaries", "1", "--cache-dir",
            cache_dir)
        assert code == 0
        code, out, _err = self.run(capsys, "cache", "stats",
                                   "--cache-dir", cache_dir)
        assert code == 0
        assert "evaluation" in out
        code, out, _err = self.run(capsys, "cache", "verify",
                                   "--cache-dir", cache_dir)
        assert code == 0
        assert "store: OK" in out

        # Corrupt one mid-file evaluation record.
        path = Path(cache_dir) / "evaluation.jsonl"
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"payload"', '"pwnload"', 1)
        path.write_text("\n".join(lines) + "\n")
        code, out, _err = self.run(capsys, "cache", "verify",
                                   "--cache-dir", cache_dir)
        assert code == 1
        assert "store: CORRUPT" in out
        code, _out, _err = self.run(capsys, "cache", "compact",
                                    "--cache-dir", cache_dir)
        assert code == 0
        code, out, _err = self.run(capsys, "cache", "verify",
                                   "--cache-dir", cache_dir)
        assert code == 0
        code, out, _err = self.run(capsys, "cache", "clear",
                                   "--cache-dir", cache_dir)
        assert code == 0
        assert "cleared" in out
        assert not path.exists()

    def test_stats_json_is_machine_readable(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self.run(capsys, "matrix", "--binaries", "1",
                 "--cache-dir", cache_dir)
        code, out, _err = self.run(capsys, "cache", "stats", "--json",
                                   "--cache-dir", cache_dir)
        assert code == 0
        stats = json.loads(out)
        assert stats["layers"]["evaluation"]["entries"] == 5

    def test_matrix_warm_run_and_no_cache_flag(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, cold, _err = self.run(
            capsys, "matrix", "--binaries", "1", "--cache-dir",
            cache_dir)
        assert code == 0
        code, warm, _err = self.run(
            capsys, "matrix", "--binaries", "1", "--cache-dir",
            cache_dir)
        assert code == 0
        assert "evaluation 5/5 hit" in warm
        assert grid_lines(warm) == grid_lines(cold)
        mtime = os.path.getmtime(Path(cache_dir) / "evaluation.jsonl")
        code, off, _err = self.run(
            capsys, "matrix", "--binaries", "1", "--cache-dir",
            cache_dir, "--no-cache")
        assert code == 0
        assert "evaluation 0/5 hit" in off
        assert os.path.getmtime(
            Path(cache_dir) / "evaluation.jsonl") == mtime

    def test_env_var_selects_the_cache_dir(self, capsys, tmp_path,
                                           monkeypatch):
        cache_dir = tmp_path / "envcache"
        monkeypatch.setenv("FEAM_CACHE_DIR", str(cache_dir))
        code, _out, err = self.run(capsys, "matrix", "--binaries", "1")
        assert code == 0
        assert str(cache_dir) in err
        assert (cache_dir / "evaluation.jsonl").exists()


# -- crash recovery (subprocess, SIGKILL) ------------------------------------------


def run_feam(argv, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("FEAM_CACHE_DIR", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", "feam", *argv],
        capture_output=True, text=True, env=env, cwd=str(cwd),
        timeout=180)


class TestCrashRecovery:
    def test_sigkill_midrun_then_resume_is_byte_identical(self,
                                                          tmp_path):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        argv = ["matrix", "--binaries", "2", "--seed", "11",
                "--journal", str(journal), "--cache-dir",
                str(cache_dir), "--no-ledger"]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("FEAM_CACHE_DIR", None)
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "feam", *argv],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=env, cwd=str(tmp_path))
        # Kill -9 as soon as at least one cell reached the journal.
        deadline = time.time() + 120
        while time.time() < deadline:
            if journal.exists() and len(
                    journal.read_text().splitlines()) >= 2:
                break
            if victim.poll() is not None:
                break
            time.sleep(0.005)
        victim.kill() if victim.poll() is None else None
        victim.wait(timeout=30)
        journalled = len([
            line for line in journal.read_text().splitlines()
            if "journal_header" not in line])
        assert journalled >= 1, "kill landed before any cell completed"

        # Simulate the torn final store record of a harder kill.
        eval_segment = cache_dir / "evaluation.jsonl"
        if eval_segment.exists():
            with open(eval_segment, "a", encoding="utf-8") as handle:
                handle.write('{"schema": 1, "layer": "evalu')

        # A clean reference run in a third, uncontaminated process.
        reference = run_feam(
            ["matrix", "--binaries", "2", "--seed", "11",
             "--cache-dir", str(tmp_path / "refcache"), "--no-ledger"],
            cwd=tmp_path)
        assert reference.returncode == 0, reference.stderr

        # The survivor resumes the journal AND warm-starts from the
        # (torn) store -- and renders the same grid.
        survivor = run_feam(argv + ["--resume", str(journal)],
                            cwd=tmp_path)
        assert survivor.returncode == 0, survivor.stderr
        assert f"resuming: {journalled} cell(s)" in survivor.stderr
        # Normalise the run-shape lines (cache stats, resume note);
        # every grid row, summary row and outcome must be identical.
        normalise = lambda text: [
            line for line in grid_lines(text)
            if not line.startswith("resumed:")]
        assert normalise(survivor.stdout) == normalise(reference.stdout)
        # The torn tail was tolerated, not fatal; every cell appears.
        assert "Traceback" not in survivor.stderr
