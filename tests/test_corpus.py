"""Benchmark corpus tests: benchmark models, compile rules, builder."""

import pytest

from repro.corpus.benchmarks import (
    ALL_BENCHMARKS,
    NPB_BENCHMARKS,
    SPEC_BENCHMARKS,
    Suite,
    benchmark,
)
from repro.corpus.builder import CorpusConfig, build_corpus
from repro.corpus.rules import compile_failure_reason, compile_succeeds
from repro.mpi.implementations import mvapich2, open_mpi
from repro.mpi.stack import Interconnect, MpiStackSpec
from repro.toolchain.compilers import Language, gnu, intel, pgi


class TestBenchmarkModels:
    def test_paper_benchmark_sets(self):
        assert [b.name for b in NPB_BENCHMARKS] == [
            "is", "ep", "cg", "mg", "bt", "sp", "lu"]
        assert [b.name for b in SPEC_BENCHMARKS] == [
            "104.milc", "107.leslie3d", "115.fds4", "122.tachyon",
            "126.lammps", "127.GAPgeofem", "129.tera_tf"]

    def test_languages(self):
        assert benchmark("nas.is").language is Language.C
        assert benchmark("nas.bt").language is Language.FORTRAN
        assert benchmark("spec.126.lammps").language is Language.CXX

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            benchmark("nas.zz")

    def test_qualified_names_unique(self):
        names = [b.qualified_name for b in ALL_BENCHMARKS]
        assert len(names) == len(set(names))

    def test_f90_flags(self):
        assert benchmark("spec.107.leslie3d").needs_f90
        assert not benchmark("nas.bt").needs_f90


class TestCompileRules:
    def spec(self, release, compiler):
        return MpiStackSpec(release, compiler, Interconnect.INFINIBAND)

    def test_g77_cannot_build_f90(self):
        stack = self.spec(open_mpi("1.3"), gnu("3.4.6"))
        reason = compile_failure_reason(benchmark("spec.107.leslie3d"), stack)
        assert reason is not None and "g77" in reason
        # NPB is FORTRAN 77: fine with g77.
        assert compile_succeeds(benchmark("nas.bt"), stack)

    def test_npb_fortran_fails_with_intel12(self):
        stack = self.spec(open_mpi("1.4"), intel("12.0"))
        assert not compile_succeeds(benchmark("nas.lu"), stack)
        assert compile_succeeds(benchmark("nas.is"), stack)  # C is fine
        old = self.spec(open_mpi("1.4"), intel("11.1"))
        assert compile_succeeds(benchmark("nas.lu"), old)

    def test_old_mvapich_cannot_link_bt_sp(self):
        stack = self.spec(mvapich2("1.2"), gnu("3.4.6"))
        assert not compile_succeeds(benchmark("nas.bt"), stack)
        assert not compile_succeeds(benchmark("nas.sp"), stack)
        assert compile_succeeds(benchmark("nas.cg"), stack)
        new = self.spec(mvapich2("1.7a"), gnu("4.1.2"))
        assert compile_succeeds(benchmark("nas.bt"), new)

    def test_pgi_rules(self):
        stack = self.spec(open_mpi("1.4"), pgi("10.3"))
        assert not compile_succeeds(benchmark("nas.is"), stack)
        assert not compile_succeeds(benchmark("spec.126.lammps"), stack)
        assert compile_succeeds(benchmark("spec.115.fds4"), stack)
        old = self.spec(open_mpi("1.3"), pgi("7.2"))
        assert not compile_succeeds(benchmark("spec.115.fds4"), old)


class TestCorpusBuilder:
    @pytest.fixture(scope="class")
    def corpus_and_sites(self):
        from repro.sites.catalog import build_paper_sites
        sites = build_paper_sites(555, cached=False)
        corpus = build_corpus(sites, CorpusConfig(seed=555))
        return corpus, sites

    def test_published_counts(self, corpus_and_sites):
        corpus, _sites = corpus_and_sites
        assert corpus.counts() == {Suite.NPB: 110, Suite.SPEC: 147}

    def test_binaries_installed_at_build_sites(self, corpus_and_sites):
        corpus, sites = corpus_and_sites
        by_name = {s.name: s for s in sites}
        for binary in corpus.binaries[:25]:
            fs = by_name[binary.build_site].machine.fs
            assert fs.is_file(binary.path)
            assert fs.read(binary.path) == binary.image

    def test_binaries_run_at_build_site(self, corpus_and_sites):
        corpus, sites = corpus_and_sites
        by_name = {s.name: s for s in sites}
        for binary in corpus.binaries[::40]:
            site = by_name[binary.build_site]
            stack = site.find_stack(binary.stack_slug)
            result = site.run_with_retries(
                "revalidate", binary.image, stack,
                provenance=binary.provenance)
            assert result.ok, binary.binary_id

    def test_misconfigured_stack_produces_no_binaries(self, corpus_and_sites):
        corpus, _sites = corpus_and_sites
        assert not any(b.stack_slug == "mpich2-1.3-pgi"
                       for b in corpus.binaries)
        assert any(s.stage == "local-run" and s.stack_slug == "mpich2-1.3-pgi"
                   for s in corpus.skipped)

    def test_skip_reasons_recorded(self, corpus_and_sites):
        corpus, _sites = corpus_and_sites
        stages = {s.stage for s in corpus.skipped}
        assert stages == {"compile", "local-run", "trim"}

    def test_binary_ids_unique(self, corpus_and_sites):
        corpus, _sites = corpus_and_sites
        ids = [b.binary_id for b in corpus.binaries]
        assert len(ids) == len(set(ids))

    def test_find(self, corpus_and_sites):
        corpus, _sites = corpus_and_sites
        first = corpus.binaries[0]
        assert corpus.find(first.binary_id) is first
        with pytest.raises(KeyError):
            corpus.find("nas.zz@nowhere/stack")

    def test_trim_disabled_keeps_everything(self):
        from repro.sites.catalog import build_paper_sites
        sites = build_paper_sites(556, cached=False)
        corpus = build_corpus(
            sites, CorpusConfig(seed=556, target_counts=None))
        counts = corpus.counts()
        assert counts[Suite.NPB] > 110
        assert counts[Suite.SPEC] > 147

    def test_deterministic_under_seed(self, corpus_and_sites):
        corpus, _sites = corpus_and_sites
        from repro.sites.catalog import build_paper_sites
        again = build_corpus(build_paper_sites(555, cached=False),
                             CorpusConfig(seed=555))
        assert [b.binary_id for b in again.binaries] == \
            [b.binary_id for b in corpus.binaries]
