"""Robust median/MAD anomaly detection over wide events.

The statistics tests pin the Iglewicz--Hoaglin arithmetic on hand
computable populations; the guard-rail tests assert the detector
stays *silent* when it has no authority (zero MAD, too few groups);
the integration tests run the real matrix feature extractor
(``repro.core.engine.anomaly_features``) over schema-shaped wide
records and check determinism end to end.
"""

import json

from repro.core.engine import anomaly_features
from repro.obs import anomaly as anomaly_mod
from repro.obs.anomaly import (
    Anomaly,
    detect,
    group_features,
    robust_zscores,
)


def _record(group, sim=1.0, outcome="no", fault_kind=None,
            attempts=1):
    return {"content_group": group, "site": f"site-{group}",
            "outcome": outcome, "fault_kind": fault_kind,
            "attempts": attempts, "sim_seconds": sim,
            "retry_seconds": 0.0, "description_hit": True,
            "discovery_hit": False, "evaluation_hit": None,
            "det_mpi_library_compatibility": "pass"}


class TestMedian:
    def test_odd_and_even_lengths(self):
        assert anomaly_mod._median([3.0, 1.0, 2.0]) == 2.0
        assert anomaly_mod._median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert anomaly_mod._median([7.0]) == 7.0


class TestGroupFeatures:
    def test_means_per_group_and_feature(self):
        records = [{"content_group": "a", "x": 1.0},
                   {"content_group": "a", "x": 3.0},
                   {"content_group": "b", "x": 10.0}]
        means = group_features(records, lambda r: {"x": r["x"]})
        assert means == {"a": {"x": 2.0}, "b": {"x": 10.0}}

    def test_group_fallback_site_then_ungrouped(self):
        records = [{"site": "fir", "x": 1.0}, {"x": 2.0}]
        means = group_features(records, lambda r: {"x": r["x"]})
        assert set(means) == {"fir", "(ungrouped)"}

    def test_non_numeric_features_are_dropped(self):
        means = group_features(
            [{"content_group": "a"}],
            lambda r: {"ok": 1.0, "label": "nope", "flag": True})
        # bool is an int subclass and counts; strings do not.
        assert means == {"a": {"flag": 1.0, "ok": 1.0}}


class TestRobustZscores:
    def _population(self, outlier=100.0):
        by_group = {f"g{i}": {"x": float(v)} for i, v in
                    enumerate([10.0, 11.0, 12.0, 13.0, 14.0])}
        by_group["spike"] = {"x": outlier}
        return by_group

    def test_outlier_is_flagged_with_the_expected_score(self):
        found = robust_zscores(self._population())
        assert [a.group for a in found] == ["spike"]
        spike = found[0]
        # median 12.5, MAD 1.5: z = 0.6745 * 87.5 / 1.5
        assert spike.median == 12.5 and spike.mad == 1.5
        assert abs(spike.zscore - 0.6745 * 87.5 / 1.5) < 1e-3
        assert spike.severity == "critical"
        assert spike.key == "anomaly:x:spike"

    def test_mild_outlier_is_warn_not_critical(self):
        # z just over the 3.5 cutoff but under 2x.
        found = robust_zscores(self._population(outlier=21.0))
        assert [a.severity for a in found] == ["warn"]

    def test_zero_mad_stays_silent(self):
        by_group = {f"g{i}": {"x": 5.0} for i in range(5)}
        by_group["spike"] = {"x": 500.0}
        assert robust_zscores(by_group) == []

    def test_min_groups_floor_stays_silent(self):
        by_group = {"a": {"x": 1.0}, "b": {"x": 2.0},
                    "c": {"x": 999.0}}
        assert robust_zscores(by_group) == []
        assert robust_zscores(by_group, min_groups=2)

    def test_sorted_by_magnitude_then_name(self):
        by_group = self._population()
        for group in by_group:
            by_group[group]["y"] = by_group[group]["x"]
        found = robust_zscores(by_group)
        assert [(a.feature, a.group) for a in found] \
            == [("x", "spike"), ("y", "spike")]

    def test_same_seed_same_output(self):
        runs = [robust_zscores(self._population(), seed=7)
                for _ in range(2)]
        assert [a.to_dict() for a in runs[0]] \
            == [a.to_dict() for a in runs[1]]


class TestAnomalyFeatures:
    def test_deterministic_features_only(self):
        features = anomaly_features(_record("a", sim=2.5))
        assert features["sim_seconds"] == 2.5
        assert features["fault_rate"] == 0.0
        assert features["unknown_rate"] == 0.0
        assert features["cache_hit_rate"] == 0.5   # 1 hit of 2 known
        assert features["det_mpi_library_compatibility_block_rate"] \
            == 0.0
        assert not any("wall" in name for name in features)

    def test_faulted_unknown_record(self):
        features = anomaly_features(_record(
            "a", outcome="unknown", fault_kind="read-error"))
        assert features["fault_rate"] == 1.0
        assert features["unknown_rate"] == 1.0

    def test_all_hits_unknown_drops_cache_rate(self):
        record = _record("a")
        record.update(description_hit=None, discovery_hit=None,
                      evaluation_hit=None)
        assert "cache_hit_rate" not in anomaly_features(record)


class TestDetect:
    def _fleet(self, groups=6, per_group=3, spiked="g0"):
        records = []
        for g in range(groups):
            group = f"g{g}"
            sim = 200.0 if group == spiked else 10.0 + g
            records.extend(_record(group, sim=sim)
                           for _ in range(per_group))
        return records

    def test_spiked_group_detected_via_real_extractor(self):
        found = detect(self._fleet(), anomaly_features, seed=7)
        assert any(a.feature == "sim_seconds" and a.group == "g0"
                   for a in found)

    def test_uniform_fleet_is_quiet(self):
        records = self._fleet(spiked=None)
        assert detect(records, anomaly_features, seed=7) == []

    def test_same_seed_byte_identical(self):
        payloads = [
            json.dumps([a.to_dict() for a in
                        detect(self._fleet(), anomaly_features,
                               seed=7)], sort_keys=True)
            for _ in range(2)]
        assert payloads[0] == payloads[1]

    def test_anomaly_to_dict_round_trip(self):
        spike = Anomaly(feature="f", group="g", value=1.0,
                        median=0.5, mad=0.1, zscore=4.0,
                        severity="warn")
        assert spike.to_dict()["zscore"] == 4.0
        assert spike.key == "anomaly:f:g"
