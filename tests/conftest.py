"""Shared fixtures.

``paper_sites`` is session-scoped and must be treated as read-only (tests
that stage files or submit jobs build their own sites).  ``make_site``
builds small single-purpose sites quickly.
"""

from __future__ import annotations

import pytest

from repro.mpi.implementations import open_mpi
from repro.mpi.stack import Interconnect
from repro.sites.catalog import PAPER_SITE_SPECS, build_paper_sites
from repro.sites.scheduler import SchedulerFlavor
from repro.sites.site import Site, SiteSpec, StackRequest
from repro.sysmodel import distro as distros
from repro.toolchain.compilers import CompilerFamily, intel

TEST_SEED = 987654


@pytest.fixture(autouse=True)
def _isolated_run_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory.

    ``feam matrix`` / ``feam chaos`` record a manifest into the ledger
    by default; without this, every in-process ``feam_main`` call in
    the suite would append to the repository's own ``.feam/runs/``.
    """
    monkeypatch.setenv("FEAM_LEDGER_DIR", str(tmp_path / "ledger"))


@pytest.fixture(autouse=True)
def _isolated_persistent_cache(monkeypatch):
    """Keep the persistent evaluation cache out of tests by default.

    A developer's ``FEAM_CACHE_DIR`` must never leak warm cache state
    into the suite; tests that exercise the store opt in explicitly
    with ``--cache-dir`` or their own ``PersistentStore``.
    """
    monkeypatch.delenv("FEAM_CACHE_DIR", raising=False)


@pytest.fixture(scope="session")
def paper_sites():
    """The five Table II sites (session-shared; treat as read-only)."""
    return build_paper_sites(TEST_SEED, cached=False)


@pytest.fixture(scope="session")
def paper_sites_by_name(paper_sites):
    return {site.name: site for site in paper_sites}


def _mini_spec(name: str = "minisite", **overrides) -> SiteSpec:
    defaults = dict(
        name=name,
        display_name="Mini Site",
        organization="Testing",
        site_type="Cluster",
        cores=64,
        arch="x86_64",
        distro=distros.CENTOS_5_6,
        libc_version="2.5",
        system_gnu_version="4.1.2",
        vendor_compilers=(intel("11.1"),),
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),
                StackRequest(open_mpi("1.4"), CompilerFamily.INTEL)),
        interconnect=Interconnect.INFINIBAND,
        module_system="modules",
        scheduler_flavor=SchedulerFlavor.PBS,
    )
    defaults.update(overrides)
    return SiteSpec(**defaults)


@pytest.fixture
def make_site():
    """Factory for small fresh sites: ``make_site(name, **spec_overrides)``."""

    def factory(name: str = "minisite", seed: int = TEST_SEED,
                **overrides) -> Site:
        return Site(_mini_spec(name, **overrides), seed)

    return factory


@pytest.fixture
def mini_site(make_site):
    """One small fresh site (mutable; per-test)."""
    return make_site()


@pytest.fixture(scope="session")
def paper_spec_names():
    return [spec.name for spec in PAPER_SITE_SPECS]
