"""Retry policies, circuit breakers and the matrix journal.

These are the unit-level contracts the engine's resilient paths rest
on (tests/test_engine_resilience.py covers the integration): seeded
backoff is deterministic and bounded, ``with_retries`` converts
eventual success and exhaustion faithfully, the breaker walks its
state machine, and the journal round-trips cells byte-for-byte while
tolerating a torn final line.
"""

import json

import pytest

from repro import obs
from repro.core.resilience import (
    BREAKER_STATE_CODES,
    BreakerState,
    CircuitBreaker,
    FailureProvenance,
    MatrixJournal,
    ResiliencePolicy,
    RetriesExhausted,
    RetryPolicy,
    provenance_from,
    with_retries,
)
from repro.sysmodel.faults import FaultKind, InjectedFault


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy()
        first = [policy.delay_seconds("k", n) for n in range(1, 5)]
        second = [policy.delay_seconds("k", n) for n in range(1, 5)]
        assert first == second

    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(base_seconds=2.0, multiplier=2.0,
                             max_delay_seconds=10.0, jitter=0.0)
        delays = [policy.delay_seconds("k", n) for n in range(1, 6)]
        assert delays == [2.0, 4.0, 8.0, 10.0, 10.0]

    def test_jitter_stays_within_the_swing(self):
        policy = RetryPolicy(base_seconds=4.0, multiplier=1.0,
                             jitter=0.25)
        for attempt in range(1, 20):
            delay = policy.delay_seconds(f"key{attempt}", attempt)
            assert 3.0 <= delay <= 5.0

    def test_from_config_reads_the_knobs(self):
        from repro.core.config import FeamConfig
        config = FeamConfig(retry_max_attempts=5, retry_base_seconds=1.5)
        policy = RetryPolicy.from_config(config)
        assert policy.max_attempts == 5
        assert policy.base_seconds == 1.5


class TestWithRetries:
    def test_success_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        value, attempts, slept = with_retries(
            RetryPolicy(max_attempts=3), "k", flaky)
        assert value == "ok"
        assert attempts == 3
        assert slept > 0.0  # simulated backoff accumulated, not slept

    def test_exhaustion_carries_the_last_error(self):
        def dead():
            raise RuntimeError("persistent")

        with pytest.raises(RetriesExhausted) as info:
            with_retries(RetryPolicy(max_attempts=3), "k", dead,
                         operation="discover", site="fir")
        assert info.value.attempts == 3
        assert info.value.operation == "discover"
        assert isinstance(info.value.last, RuntimeError)

    def test_deadline_budget_cuts_retries_short(self):
        def dead():
            raise RuntimeError("persistent")

        with pytest.raises(RetriesExhausted) as info:
            with_retries(RetryPolicy(max_attempts=10, base_seconds=50.0),
                         "k", dead, deadline_seconds=60.0)
        assert info.value.deadline_hit
        assert info.value.attempts < 10

    def test_retries_are_counted_and_evented(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise RuntimeError("once")
            return "ok"

        with obs.capture() as collector:
            with_retries(RetryPolicy(), "k", flaky, site="fir")
        counters = collector.metrics.to_dict()["counters"]
        assert counters["resilience.retries.total"] == 1
        retry_events = [e for e in collector.events.events
                        if e.name == "resilience.retry"]
        assert len(retry_events) == 1
        assert retry_events[0].attrs["site"] == "fir"


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("fir", failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("fir", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_quarantines_then_probes(self):
        breaker = CircuitBreaker("fir", failure_threshold=1,
                                 probe_after=2)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()          # quarantined skip 1
        assert breaker.allow()              # skip 2 -> probe window
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("fir", failure_threshold=1,
                                 probe_after=1)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker("fir", failure_threshold=1,
                                 probe_after=1)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_transitions_publish_gauge_and_event(self):
        with obs.capture() as collector:
            breaker = CircuitBreaker("fir", failure_threshold=1)
            breaker.record_failure()
        gauges = collector.metrics.to_dict()["gauges"]
        assert gauges["resilience.breaker.fir.state"] == \
            BREAKER_STATE_CODES[BreakerState.OPEN]
        transitions = [e for e in collector.events.events
                       if e.name == "resilience.breaker"]
        assert transitions[-1].attrs["to_state"] == "open"


class TestStateCodesStayInSync:
    def test_serve_word_map_mirrors_the_codes(self):
        # repro.obs must not import repro.core, so serve keeps its own
        # code->word map; this is the cross-layer consistency pin.
        from repro.obs.serve import _BREAKER_WORDS
        assert _BREAKER_WORDS == {
            code: state.value
            for state, code in BREAKER_STATE_CODES.items()}

    def test_breaker_states_reads_the_gauges(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.serve import breaker_states
        registry = MetricsRegistry()
        registry.gauge("resilience.breaker.fir.state").set(2)
        registry.gauge("resilience.breaker.ranger.state").set(0)
        registry.gauge("matrix.cells.total").set(20)  # not a breaker
        assert breaker_states(registry) == {"fir": "open",
                                            "ranger": "closed"}


class TestProvenance:
    def test_render_mentions_the_essentials(self):
        provenance = FailureProvenance(
            kind="read-error", detail="x", site="fir",
            operation="evaluate", attempts=3, retry_seconds=9.8)
        text = provenance.render()
        assert "evaluate failed: read-error" in text
        assert "attempts=3" in text
        assert "retried 9.8s" in text

    def test_dict_round_trip(self):
        provenance = FailureProvenance(
            kind="discovery-timeout", detail="d", site="fir",
            operation="discover", attempts=2, retry_seconds=4.5,
            breaker_state="open", transient=True, deadline_hit=True)
        assert FailureProvenance.from_dict(provenance.to_dict()) \
            == provenance

    def test_unwraps_exhausted_injected_faults(self):
        fault = InjectedFault(FaultKind.READ_ERROR, "fir", "/a",
                              transient=False, occurrence=1)
        exhausted = RetriesExhausted("evaluate", "k", fault,
                                     attempts=3, slept_seconds=6.0)
        provenance = provenance_from(exhausted, site="fir")
        assert provenance.kind == "read-error"
        assert provenance.attempts == 3
        assert provenance.retry_seconds == 6.0
        assert provenance.transient is False

    def test_plain_exception_uses_the_class_name(self):
        provenance = provenance_from(ValueError("bad"), site="fir")
        assert provenance.kind == "ValueError"


class TestMatrixJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with MatrixJournal(str(path)) as journal:
            journal.record({"binary": "a", "site": "fir", "ready": True})
            journal.record({"binary": "a", "site": "ranger",
                            "ready": False})
        assert journal.written == 2
        loaded = MatrixJournal.load(str(path))
        assert set(loaded) == {("a", "fir"), ("a", "ranger")}
        assert loaded[("a", "fir")]["ready"] is True

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with MatrixJournal(str(path)) as journal:
            journal.record({"binary": "a", "site": "fir"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"binary": "a", "site": "ran')  # the kill
        assert set(MatrixJournal.load(str(path))) == {("a", "fir")}

    def test_records_are_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with MatrixJournal(str(path)) as journal:
            journal.record({"site": "fir", "binary": "a"})
        line = path.read_text()
        assert line.endswith("\n")
        assert line == json.dumps(
            {"binary": "a", "site": "fir"}, sort_keys=True) + "\n"


class TestResiliencePolicy:
    def test_from_config_builds_everything(self):
        from repro.core.config import FeamConfig
        policy = ResiliencePolicy.from_config(
            FeamConfig(breaker_failure_threshold=5,
                       cell_deadline_seconds=60.0))
        assert policy.breaker_failure_threshold == 5
        assert policy.cell_deadline_seconds == 60.0
        breaker = policy.breaker_for("fir")
        assert breaker.failure_threshold == 5
