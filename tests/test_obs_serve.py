"""The telemetry serving layer: exposition format and live endpoints.

The Prometheus tests parse the exposition *back* line by line --
sanitised names, label escaping, cumulative ``_bucket`` series capped
by ``le="+Inf"``, ``_sum``/``_count`` agreement -- because a scraper,
not a human, is the consumer.  The HTTP tests bind a real server on an
ephemeral port, including one polling ``/healthz`` and ``/metrics``
*while* ``evaluate_matrix`` runs on another thread (the ``feam serve``
deployment shape).
"""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.serve import (
    TelemetryServer,
    escape_label_value,
    render_prometheus,
)

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")


def parse_exposition(text):
    """(name, labels-str, float) triples for every sample line."""
    samples = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        assert match, f"unparsable exposition line: {line!r}"
        samples.append((match.group("name"), match.group("labels") or "",
                        float(match.group("value"))))
    return samples


class TestExpositionFormat:
    def test_counter_gauge_names_sanitised_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("engine.cache.evaluation.hits").inc(4)
        registry.gauge("matrix.unknown_cells.pct").set(7.5)
        text = render_prometheus(registry)
        samples = dict((name, value) for name, _, value
                       in parse_exposition(text))
        assert samples["feam_engine_cache_evaluation_hits_total"] == 4
        assert samples["feam_matrix_unknown_cells_pct"] == 7.5
        assert "# TYPE feam_engine_cache_evaluation_hits_total counter" \
            in text
        assert "# TYPE feam_matrix_unknown_cells_pct gauge" in text
        # HELP keeps the original dotted name for humans.
        assert "engine.cache.evaluation.hits" in text

    def test_histogram_bucket_sum_count_parse_back(self):
        registry = MetricsRegistry()
        h = registry.histogram("engine.cell.wall_seconds",
                               buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 42.0):
            h.observe(value)
        samples = parse_exposition(render_prometheus(registry))
        base = "feam_engine_cell_wall_seconds"
        buckets = [(labels, value) for name, labels, value in samples
                   if name == f"{base}_bucket"]
        les = [dict(pair.split("=", 1) for pair in labels.split(","))
               ['le'].strip('"') for labels, _ in buckets]
        counts = [value for _, value in buckets]
        assert les == ["0.01", "0.1", "1.0", "+Inf"]
        assert counts == [1.0, 2.0, 3.0, 4.0]  # cumulative
        by_name = {name: value for name, _, value in samples}
        assert by_name[f"{base}_count"] == 4.0
        assert by_name[f"{base}_count"] == counts[-1]
        assert by_name[f"{base}_sum"] == pytest.approx(42.555)

    def test_label_escaping_round_trips(self):
        assert escape_label_value('pla\\in"quo\nte') \
            == 'pla\\\\in\\"quo\\nte'
        registry = MetricsRegistry()
        registry.counter("c").inc()
        text = render_prometheus(
            registry, labels={"run": 'a"b\\c\nd', "site": "fir"})
        (line,) = [l for l in text.splitlines()
                   if l.startswith("feam_c_total")]
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        assert "\n" not in line  # the newline itself must not leak
        assert 'site="fir"' in line

    def test_labels_attach_to_every_sample_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        text = render_prometheus(registry, labels={"run": "x"})
        for name, labels, _ in parse_exposition(text):
            assert 'run="x"' in labels, f"{name} lost the global label"

    def test_empty_registry_renders_no_samples(self):
        assert parse_exposition(render_prometheus(MetricsRegistry())) \
            == []


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestEndpoints:
    @pytest.fixture
    def served(self):
        collector = obs.Collector()
        collector.metrics.counter("engine.invalidations").inc(2)
        with collector.tracer.span("engine.matrix"):
            with collector.tracer.span("engine.site", site="fir"):
                pass
        with TelemetryServer(collector, port=0) as server:
            yield server

    def test_metrics_endpoint(self, served):
        status, body = _get(served.url + "/metrics")
        assert status == 200
        assert dict((n, v) for n, _, v in parse_exposition(body))[
            "feam_engine_invalidations_total"] == 2

    def test_healthz(self, served):
        status, body = _get(served.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["spans"] == 2
        assert payload["active"] is True
        assert payload["breakers"] == {}       # no breaker gauges yet

    def test_healthz_and_slo_report_breaker_states(self):
        collector = obs.Collector()
        collector.metrics.gauge(
            "resilience.breaker.fir.state").set(2)
        collector.metrics.gauge(
            "resilience.breaker.ranger.state").set(0)
        with TelemetryServer(collector, port=0) as server:
            _, health = _get(server.url + "/healthz")
            _, slo = _get(server.url + "/slo")
        expected = {"fir": "open", "ranger": "closed"}
        assert json.loads(health)["breakers"] == expected
        assert json.loads(slo)["breakers"] == expected

    def test_trace_tree(self, served):
        status, body = _get(served.url + "/trace")
        payload = json.loads(body)
        assert status == 200
        assert payload["span_count"] == 2
        (root,) = payload["roots"]
        assert root["name"] == "engine.matrix"
        assert root["children"][0]["attrs"] == {"site": "fir"}

    def test_slo_endpoint_reports_violations_as_503(self, served):
        status, body = _get(served.url + "/slo")
        payload = json.loads(body)
        # The bare fixture registry misses the mandatory gauges.
        assert status == 503
        assert payload["ok"] is False

    def test_runs_endpoint_lists_the_ledger(self, tmp_path):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(str(tmp_path / "runs"))
        ledger.record({"run_id": "r-1", "kind": "matrix", "seed": 7,
                       "rollup": {"cells": 10}})
        ledger.record({"run_id": "r-2", "kind": "chaos", "seed": 7,
                       "rollup": {"cells": 10}})
        with TelemetryServer(obs.Collector(), port=0,
                             ledger=ledger) as server:
            status, body = _get(server.url + "/runs")
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 2
        assert [run["run_id"] for run in payload["runs"]] \
            == ["r-1", "r-2"]
        assert payload["runs"][1]["kind"] == "chaos"
        assert payload["runs"][1]["cells"] == 10

    def test_runs_endpoint_empty_ledger(self, tmp_path):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(str(tmp_path / "empty"))
        with TelemetryServer(obs.Collector(), port=0,
                             ledger=ledger) as server:
            status, body = _get(server.url + "/runs")
        assert status == 200
        assert json.loads(body) == {"path": ledger.path, "count": 0,
                                    "runs": []}

    def test_unknown_path_404(self, served):
        status, body = _get(served.url + "/definitely-not")
        assert status == 404
        assert "/metrics" in body
        assert "/alerts" in body

    def test_build_info_gauge_on_metrics(self, served):
        import repro
        from repro.obs import alerts as alerts_mod
        from repro.obs import ledger as ledger_mod
        from repro.obs import wide as wide_mod

        _, body = _get(served.url + "/metrics")
        (line,) = [l for l in body.splitlines()
                   if l.startswith("feam_build_info")]
        assert line.endswith(" 1")
        assert f'version="{repro.__version__}"' in line
        assert f'wide_schema="{wide_mod.SCHEMA_VERSION}"' in line
        assert f'ledger_schema="{ledger_mod.SCHEMA_VERSION}"' in line
        assert f'alert_schema="{alerts_mod.SCHEMA_VERSION}"' in line
        assert "# TYPE feam_build_info gauge" in body
        # The renderer must still parse as clean exposition format.
        samples = dict((n, v) for n, _, v in parse_exposition(body))
        assert samples["feam_build_info"] == 1

    def test_default_collector_is_the_installed_one(self):
        with TelemetryServer(port=0) as server:
            status, payload = _get(server.url + "/healthz")
            assert json.loads(payload)["active"] is False
            with obs.capture() as collector:
                collector.metrics.counter("x").inc()
                _, body = _get(server.url + "/metrics")
                assert "feam_x_total 1" in body


class TestAlertEndpoints:
    """The serve exit/status contract around the alert engine.

    ``/alerts`` is the only scrape that *ticks* the burn windows;
    ``/healthz`` reads the same engine without advancing it, so a
    liveness probe can poll at any frequency without paging anyone.
    """

    def _healthy(self, collector):
        collector.metrics.gauge("matrix.cells.total").set(20)
        collector.metrics.gauge("matrix.unknown_cells.pct").set(0.0)

    def test_alerts_endpoint_503_body_while_firing(self):
        # A bare registry violates the mandatory critical rules; the
        # default for_ticks=2 means tick 1 is pending (200), tick 2
        # fires (503).
        with TelemetryServer(obs.Collector(), port=0) as server:
            status, body = _get(server.url + "/alerts")
            payload = json.loads(body)
            assert status == 200
            assert payload["tick"] == 1
            assert payload["firing"] == []
            assert [s["state"] for s in payload["pending"]] \
                == ["pending"] * len(payload["pending"])

            status, body = _get(server.url + "/alerts")
            payload = json.loads(body)
            assert status == 503
            assert payload["tick"] == 2
            firing = {s["alert"] for s in payload["firing"]}
            assert "slo:matrix.cells.total > 0" in firing
            assert all(s["severity"] == "critical"
                       for s in payload["firing"])

    def test_healthz_lifecycle_200_503_200(self):
        collector = obs.Collector()
        with TelemetryServer(collector, port=0) as server:
            health = server.url + "/healthz"
            alerts = server.url + "/alerts"

            # Pending (tick 1): the probe must NOT page yet.
            _get(alerts)
            status, body = _get(health)
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["alerts"]["pending"] > 0
            assert payload["alerts"]["critical_firing"] is False

            # Firing (tick 2): degraded, 503.
            _get(alerts)
            status, body = _get(health)
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "degraded"
            assert payload["alerts"]["firing"] > 0
            assert payload["alerts"]["critical_firing"] is True

            # Healthz itself never ticks the engine: poll it again
            # and the state is unchanged.
            status, _ = _get(health)
            assert status == 503
            assert server.alerts.tick == 2

            # Healthy metrics arrive; the next /alerts tick resolves
            # (burn_fast drops below 1.0) and the probe recovers.
            self._healthy(collector)
            status, body = _get(alerts)
            assert status == 200
            assert json.loads(body)["firing"] == []
            status, body = _get(health)
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["alerts"]["firing"] == 0

    def test_healthz_stays_ok_while_only_warn_alerts_fire(self):
        from repro.obs import alerts as alerts_mod

        engine = alerts_mod.AlertEngine(rules=[], emit_obs=False)
        engine.set_condition("anomaly:x:g", True, severity="warn")
        with TelemetryServer(obs.Collector(), port=0,
                             alerts=engine) as server:
            status, body = _get(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["alerts"]["firing"] == 1
        assert payload["alerts"]["critical_firing"] is False

    def test_alerts_resolution_is_a_transition_not_amnesia(self):
        collector = obs.Collector()
        self._healthy(collector)
        with TelemetryServer(collector, port=0) as server:
            _get(server.url + "/alerts")
            _, body = _get(server.url + "/alerts")
        payload = json.loads(body)
        # Healthy from the start: nothing ever pended or fired.
        assert payload["transitions"] == 0
        assert payload["alerts"] == []


class TestServeDuringMatrix:
    @pytest.fixture(scope="class")
    def matrix_inputs(self):
        from repro.core.engine import EngineBinary
        from repro.sites.catalog import build_paper_sites
        from repro.toolchain.compilers import Language

        sites = build_paper_sites(20130101, cached=False)[:3]
        binaries = []
        for index, site in enumerate(sites[:2]):
            stack = site.stacks[0]
            name = f"serve-{site.name}-{index}"
            linked = site.compile_mpi_program(
                name, Language.FORTRAN, stack)
            binaries.append(
                EngineBinary(binary_id=name, image=linked.image))
        return sites, binaries

    def test_healthz_and_metrics_while_matrix_runs(self, matrix_inputs):
        from repro.core.engine import EvaluationEngine

        sites, binaries = matrix_inputs
        engine = EvaluationEngine(max_workers=3)
        statuses = []
        with obs.capture() as collector:
            with TelemetryServer(collector, port=0) as server:
                done = threading.Event()

                def scrape():
                    while not done.is_set():
                        status, _ = _get(server.url + "/healthz")
                        statuses.append(status)
                        status, body = _get(server.url + "/metrics")
                        statuses.append(status)
                        parse_exposition(body)  # must stay well-formed

                scraper = threading.Thread(target=scrape, daemon=True)
                scraper.start()
                try:
                    for _ in range(2):  # second round = warm caches
                        engine.evaluate_matrix(binaries, sites)
                finally:
                    done.set()
                    scraper.join(timeout=10)

                assert statuses and set(statuses) == {200}
                # After the run the matrix gauges are scrapable.
                _, body = _get(server.url + "/metrics")
                samples = dict((n, v) for n, _, v
                               in parse_exposition(body))
                assert samples["feam_matrix_cells_total"] \
                    == len(binaries) * len(sites)
                assert samples["feam_engine_cache_hit_rate"] > 0
                status, health = _get(server.url + "/healthz")
                assert json.loads(health)["spans"] \
                    == len(collector.tracer.snapshot())
