"""Table/figure renderers and the command-line interface."""

import pytest

from repro.evaluation import figures, tables


class TestStaticTables:
    def test_table1_lists_all_implementations(self):
        text = tables.render_table1()
        assert "MVAPICH2" in text and "Open MPI" in text and "MPICH2" in text
        assert "libibverbs" in text
        assert "libnsl" in text

    def test_table2_lists_all_sites(self):
        text = tables.render_table2()
        for name in ("Ranger", "Forge", "Blacklight", "India", "Fir"):
            assert name in text
        assert "62,976" in text
        assert "LibC v2.3.4" in text
        assert "MVAPICH2 1.7a2 (i/g)" in text


class TestFigures:
    def test_figure1_four_determinants(self):
        text = figures.render_figure1()
        for marker in ("compatible ISA", "MPI stack", "C library",
                       "shared libraries"):
            assert marker in text

    def test_figure2_phases_and_components(self):
        text = figures.render_figure2()
        assert "source phase" in text
        assert "target phase" in text
        assert "Binary Description Component" in text
        assert "Target Evaluation Component" in text

    def test_figure3_and_4_lists(self):
        f3 = figures.render_figure3()
        assert "ISA and file format" in f3
        assert "C library version requirements" in f3
        f4 = figures.render_figure4()
        assert "Missing shared libraries" in f4
        assert "MPI stacks" in f4


class TestExperimentalTables:
    @pytest.fixture(scope="class")
    def result(self):
        """A reduced experiment keeps this module quick: a corpus trimmed
        to 20+20 binaries exercises the same rendering paths."""
        from repro.corpus.benchmarks import Suite
        from repro.corpus.builder import CorpusConfig
        from repro.evaluation.experiment import (
            ExperimentConfig,
            run_experiment,
        )
        config = ExperimentConfig(
            seed=777,
            corpus=CorpusConfig(
                seed=777,
                target_counts={Suite.NPB: 20, Suite.SPEC: 20}))
        return run_experiment(config)

    def test_table3_renders(self, result):
        text = tables.render_table3(result)
        assert "TABLE III" in text
        assert "measured" in text and "paper" in text
        assert "94%" in text  # the paper row

    def test_table4_renders(self, result):
        text = tables.render_table4(result)
        assert "TABLE IV" in text
        assert "Before" in text and "Increase" in text

    def test_intext_renders(self, result):
        text = tables.render_intext(result)
        assert "max source phase" in text
        assert "missing-shared-library" in text
        assert "MB" in text


class TestCli:
    def test_static_targets(self, capsys):
        from repro.__main__ import main
        assert main(["table1", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out and "FIGURE 3" in out

    def test_all_includes_static(self, capsys):
        # "all" would run the experiment; just verify argument parsing of
        # the static subset here.
        from repro.__main__ import main
        assert main(["fig1", "fig2", "fig4", "table2"]) == 0
        out = capsys.readouterr().out
        assert "FIGURE 1" in out and "TABLE II" in out

    def test_rejects_unknown_target(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["table99"])
