"""Binary Description Component tests (paper Section V.A, Figure 3)."""

import pytest

from repro.core.description import (
    BinaryDescriptionComponent,
    DescriptionError,
    identify_mpi_implementation,
    required_glibc_from_versions,
)
from repro.toolchain.compilers import Language
from repro.tools.toolbox import Toolbox


@pytest.fixture
def site(make_site):
    return make_site("bdcsite")


@pytest.fixture
def stack(site):
    return site.find_stack("openmpi-1.4-intel")


@pytest.fixture
def app_path(site, stack):
    app = site.compile_mpi_program("bdc-app", Language.FORTRAN, stack,
                                   glibc_ceiling=(2, 4))
    site.machine.fs.write("/home/user/app", app.image, mode=0o755)
    return "/home/user/app"


@pytest.fixture
def bdc(site, stack):
    return BinaryDescriptionComponent(site.toolbox(),
                                      site.env_with_stack(stack))


class TestIdentification:
    """Table I's identification scheme."""

    def test_open_mpi(self):
        assert identify_mpi_implementation(
            ("libmpi.so.0", "libnsl.so.1", "libutil.so.1",
             "libc.so.6")) == "Open MPI"

    def test_open_mpi_fortran(self):
        assert identify_mpi_implementation(
            ("libmpi_f77.so.0", "libmpi.so.0", "libc.so.6")) == "Open MPI"

    def test_mvapich2(self):
        assert identify_mpi_implementation(
            ("libmpich.so.1.0", "libibverbs.so.1", "libibumad.so.3",
             "libc.so.6")) == "MVAPICH2"

    def test_mpich2_without_ib(self):
        assert identify_mpi_implementation(
            ("libmpich.so.3", "librt.so.1", "libc.so.6")) == "MPICH2"

    def test_mpichf90_counts(self):
        assert identify_mpi_implementation(
            ("libmpichf90.so.3", "libc.so.6")) == "MPICH2"

    def test_non_mpi(self):
        assert identify_mpi_implementation(
            ("libc.so.6", "libm.so.6")) is None


class TestRequiredGlibc:
    def test_from_references(self):
        refs = (("libc.so.6", "GLIBC_2.2.5"), ("libc.so.6", "GLIBC_2.7"),
                ("libm.so.6", "GLIBC_2.3.4"))
        assert required_glibc_from_versions(refs, ()) == "2.7"

    def test_numeric_not_lexicographic(self):
        refs = (("libc.so.6", "GLIBC_2.10"), ("libc.so.6", "GLIBC_2.9"))
        assert required_glibc_from_versions(refs, ()) == "2.10"

    def test_definitions_counted(self):
        assert required_glibc_from_versions(
            (), ("GLIBC_2.5", "OTHER_1.0")) == "2.5"

    def test_private_ignored(self):
        refs = (("libc.so.6", "GLIBC_PRIVATE"),)
        assert required_glibc_from_versions(refs, ()) is None

    def test_none_when_no_glibc(self):
        assert required_glibc_from_versions(
            (("libfoo.so.1", "FOO_1.0"),), ()) is None


class TestDescribe:
    def test_figure3_fields(self, bdc, app_path):
        d = bdc.describe(app_path)
        assert d.file_format == "elf64-x86-64"
        assert d.isa_name == "x86-64" and d.bits == 64
        assert d.is_dynamic and not d.is_shared_library
        assert d.mpi_implementation == "Open MPI"
        assert d.required_glibc == "2.4"
        assert d.build_compiler_hint.startswith("Intel")
        assert d.gathered_via == "objdump"

    def test_describe_shared_library(self, bdc, site):
        d = bdc.describe("/usr/lib64/libgfortran.so.1")
        assert d.is_shared_library
        assert d.soname == "libgfortran.so.1"
        assert d.library_version == (1,)

    def test_fallback_to_ldd_without_objdump(self, site, stack, app_path):
        toolbox = Toolbox(site.machine,
                          Toolbox.ALL_TOOLS - frozenset({"objdump"}))
        bdc = BinaryDescriptionComponent(toolbox,
                                         site.env_with_stack(stack))
        d = bdc.describe(app_path)
        assert d.gathered_via == "ldd"
        assert d.mpi_implementation == "Open MPI"
        assert "libmpi.so.0" in d.needed
        assert d.required_glibc == "2.4"

    def test_no_tools_at_all_raises(self, site, app_path):
        toolbox = Toolbox(site.machine, frozenset({"cat"}))
        bdc = BinaryDescriptionComponent(toolbox)
        with pytest.raises((DescriptionError, Exception)):
            bdc.describe(app_path)


class TestLocateAndCopy:
    def test_locate_via_ldd(self, bdc, app_path):
        locations = bdc.locate_libraries(bdc.describe(app_path))
        assert all(path is not None for path in locations.values())
        assert locations["libmpi.so.0"].startswith("/opt/openmpi-1.4-intel")

    def test_locate_falls_back_to_search(self, site, stack, app_path):
        # Without a stack environment ldd reports missing; the search
        # still locates the files on disk (Section V.A).
        bdc = BinaryDescriptionComponent(site.toolbox(), site.machine.env)
        locations = bdc.locate_libraries(bdc.describe(app_path))
        assert locations["libmpi.so.0"] is not None

    def test_gather_copies_excludes_libc(self, bdc, app_path):
        records = bdc.gather_library_copies(bdc.describe(app_path))
        by_soname = {r.soname: r for r in records}
        assert not by_soname["libc.so.6"].copied
        assert by_soname["libmpi.so.0"].copied
        assert by_soname["libifcore.so.5"].copied

    def test_gather_copies_recursive(self, bdc, app_path):
        records = bdc.gather_library_copies(bdc.describe(app_path))
        sonames = {r.soname for r in records}
        # libmpi needs libopen-rte which needs libopen-pal: transitive
        # dependencies are described too.
        assert "libopen-pal.so.0" in sonames

    def test_copies_are_real_images(self, bdc, app_path):
        from repro.elf import describe_elf
        records = bdc.gather_library_copies(bdc.describe(app_path))
        record = next(r for r in records if r.soname == "libmpi.so.0")
        info = describe_elf(record.image)
        assert info.soname == "libmpi.so.0"

    def test_library_records_carry_glibc_requirement(self, bdc, app_path):
        records = bdc.gather_library_copies(bdc.describe(app_path))
        record = next(r for r in records if r.soname == "libmpi.so.0")
        assert record.required_glibc is not None

    def test_describe_library_missing_path(self, bdc):
        record = bdc.describe_library("libghost.so.1", None)
        assert not record.located and not record.copied
