"""The wide-event store: where/agg parsing, grouping, ranking, capping.

``feam query`` is triage tooling -- its numbers must match what the
matrix renderer would report, its percentiles are exact order
statistics (unlike the fixed-bucket histograms), and its output is
stable across runs (deterministic tie-breaks, explicit truncation).
"""

import pytest

from repro.obs.store import (
    Aggregation,
    WhereClause,
    parse_agg,
    parse_where,
    render_result,
    run_query,
)


def _events():
    records = []
    for index in range(10):
        records.append({
            "site": f"gen-{index:04d}",
            "binary": "app-0",
            "outcome": "unknown" if index < 3 else "ready",
            "faulted": index == 0,
            "wall_seconds": (index + 1) / 100.0,  # 0.01 .. 0.10
        })
    return records


class TestParseWhere:
    def test_equality(self):
        clause = parse_where("outcome=unknown")
        assert clause == WhereClause("outcome", "=", "unknown")

    def test_all_operators(self):
        for op in ("=", "!=", ">", ">=", "<", "<="):
            assert parse_where(f"wall_seconds{op}0.5").op == op

    def test_value_keeps_internal_equals(self):
        assert parse_where("detail=a=b").value == "a=b"

    def test_unparsable_raises(self):
        with pytest.raises(ValueError, match="unparsable --where"):
            parse_where("outcome")

    def test_equality_is_case_insensitive(self):
        clause = parse_where("outcome=UNKNOWN")
        assert clause.matches({"outcome": "unknown"})

    def test_equality_is_numeric_aware(self):
        assert parse_where("steals=0").matches({"steals": 0})
        assert parse_where("wall_seconds=0.5").matches(
            {"wall_seconds": 0.5})

    def test_equality_is_bool_and_none_aware(self):
        assert parse_where("faulted=true").matches({"faulted": True})
        assert parse_where("faulted=0").matches({"faulted": False})
        assert parse_where("fault_kind=none").matches({"fault_kind": None})
        assert not parse_where("fault_kind=none").matches(
            {"fault_kind": "io"})

    def test_ordered_ops_skip_non_numeric_fields(self):
        clause = parse_where("outcome>0.5")
        assert not clause.matches({"outcome": "ready"})
        assert not clause.matches({})  # absent field never matches

    def test_ordered_ops_compare_numerically(self):
        clause = parse_where("wall_seconds>=0.05")
        assert clause.matches({"wall_seconds": 0.05})
        assert not clause.matches({"wall_seconds": 0.049})


class TestParseAgg:
    def test_count_and_field_aggs(self):
        assert parse_agg("count") == Aggregation("count", None)
        assert parse_agg("p95:wall_seconds") == \
            Aggregation("p95", "wall_seconds")

    def test_count_takes_no_field(self):
        with pytest.raises(ValueError, match="count takes no field"):
            parse_agg("count:site")

    def test_field_aggs_need_a_field(self):
        with pytest.raises(ValueError, match="needs a field"):
            parse_agg("p95")

    def test_unknown_fn_raises(self):
        with pytest.raises(ValueError, match="unparsable --agg"):
            parse_agg("median:wall_seconds")

    def test_exact_percentiles(self):
        records = [{"v": float(i)} for i in range(1, 101)]  # 1..100
        assert Aggregation("p50", "v").compute(records) == 50.0
        assert Aggregation("p95", "v").compute(records) == 95.0
        assert Aggregation("p99", "v").compute(records) == 99.0
        assert Aggregation("min", "v").compute(records) == 1.0
        assert Aggregation("max", "v").compute(records) == 100.0
        assert Aggregation("mean", "v").compute(records) == 50.5
        assert Aggregation("sum", "v").compute(records) == 5050.0

    def test_non_numeric_values_are_skipped(self):
        records = [{"v": "text"}, {"v": 2.0}, {}]
        assert Aggregation("mean", "v").compute(records) == 2.0
        assert Aggregation("mean", "v").compute([{"v": "x"}]) is None


class TestRunQuery:
    def test_default_agg_is_count(self):
        result = run_query(_events(), by="outcome")
        assert [agg.name for agg in result.aggs] == ["count"]
        counts = {group: values["count"]
                  for group, values, _size in result.rows}
        assert counts == {"ready": 7.0, "unknown": 3.0}

    def test_where_filters_before_grouping(self):
        result = run_query(_events(),
                           where=[parse_where("outcome=unknown")],
                           by="site")
        assert result.total == 10
        assert result.matched == 3
        assert [group for group, _, _ in result.rows] == \
            ["gen-0000", "gen-0001", "gen-0002"]

    def test_no_group_by_is_one_global_group(self):
        result = run_query(_events(),
                           aggs=[parse_agg("p95:wall_seconds")])
        assert len(result.rows) == 1
        group, values, size = result.rows[0]
        assert group == "*" and size == 10
        assert values["p95:wall_seconds"] == pytest.approx(0.10)

    def test_absent_group_key_buckets_together(self):
        records = _events() + [{"outcome": "ready"}]  # no "site" field
        result = run_query(records, by="site", top=50)
        assert any(group == "(absent)" for group, _, _ in result.rows)

    def test_rows_rank_by_first_agg_desc_with_stable_ties(self):
        result = run_query(_events(), by="site", top=50)
        # Every site has count 1 -> ties broken by group value.
        assert [group for group, _, _ in result.rows] == \
            sorted(f"gen-{i:04d}" for i in range(10))

    def test_top_caps_rows_and_counts_truncation(self):
        result = run_query(_events(), by="site", top=4)
        assert len(result.rows) == 4
        assert result.truncated == 6

    def test_empty_match_yields_no_rows(self):
        result = run_query(_events(),
                           where=[parse_where("outcome=nope")])
        assert result.matched == 0 and result.rows == []

    def test_to_dict_shape(self):
        payload = run_query(_events(), by="outcome",
                            aggs=[parse_agg("count"),
                                  parse_agg("mean:wall_seconds")]).to_dict()
        assert payload["total"] == 10
        assert payload["by"] == "outcome"
        assert payload["aggregations"] == ["count", "mean:wall_seconds"]
        top_row = payload["rows"][0]
        assert top_row["group"] == "ready"
        assert top_row["records"] == 7
        assert top_row["count"] == 7.0
        assert payload["truncated_rows"] == 0


class TestAggregateEdgeCases:
    def test_empty_group_after_where_with_group_by(self):
        # A --where that eliminates everything must yield zero groups
        # (not one empty group with degenerate aggregates), and the
        # renderer must say so rather than print a bare header.
        where = [parse_where("outcome=nope")]
        result = run_query(_events(), where=where, by="site",
                           aggs=[parse_agg("p95:wall_seconds")])
        assert result.matched == 0
        assert result.rows == []
        assert "(no matching events)" in render_result(result,
                                                       where=where)

    def test_single_row_percentiles_all_equal_the_value(self):
        one = [{"site": "solo", "wall_seconds": 0.042}]
        result = run_query(one, by="site",
                           aggs=[parse_agg("p50:wall_seconds"),
                                 parse_agg("p95:wall_seconds"),
                                 parse_agg("p99:wall_seconds")])
        (_group, values, size) = result.rows[0]
        assert size == 1
        assert values["p50:wall_seconds"] == pytest.approx(0.042)
        assert values["p95:wall_seconds"] == pytest.approx(0.042)
        assert values["p99:wall_seconds"] == pytest.approx(0.042)

    def test_mixed_type_field_aggregates_numeric_subset(self):
        # A field that is numeric in some events and a string in
        # others (a writer bug, or schema skew between versions) must
        # aggregate over the numeric subset only, never raise.
        records = [{"wall_seconds": 1.0}, {"wall_seconds": "fast"},
                   {"wall_seconds": 3.0}, {"wall_seconds": None}]
        result = run_query(records, aggs=[parse_agg("mean:wall_seconds"),
                                          parse_agg("count")])
        (_group, values, size) = result.rows[0]
        assert size == 4
        assert values["mean:wall_seconds"] == pytest.approx(2.0)

    def test_mixed_type_ordered_where_skips_non_numeric(self):
        records = [{"wall_seconds": 1.0}, {"wall_seconds": "fast"},
                   {"wall_seconds": 3.0}]
        result = run_query(records,
                           where=[parse_where("wall_seconds>=2")])
        assert result.matched == 1

    def test_all_non_numeric_group_aggregates_to_none(self):
        records = [{"site": "a", "wall_seconds": "oops"}]
        result = run_query(records, by="site",
                           aggs=[parse_agg("p50:wall_seconds")])
        (_group, values, size) = result.rows[0]
        assert size == 1
        assert values["p50:wall_seconds"] is None


class TestRender:
    def test_header_and_footer(self):
        where = [parse_where("outcome=ready")]
        result = run_query(_events(), where=where, by="site", top=3)
        text = render_result(result, where=where)
        assert text.startswith("wide events: 7/10 match [outcome=ready]")
        assert "... and 4 more row(s) (raise --top to see them)" in text

    def test_no_matches_message(self):
        where = [parse_where("outcome=nope")]
        text = render_result(run_query(_events(), where=where),
                             where=where)
        assert "(no matching events)" in text

    def test_no_footer_when_nothing_truncated(self):
        text = render_result(run_query(_events(), by="outcome"))
        assert "more row(s)" not in text
        assert "[all]" in text
