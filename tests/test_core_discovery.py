"""Environment Discovery Component tests (paper Section V.B, Figure 4)."""

import pytest

from repro.core.discovery import (
    EnvironmentDiscoveryComponent,
    parse_stack_name,
)
from repro.tools.toolbox import Toolbox


@pytest.fixture
def site(make_site):
    return make_site("edcsite")


@pytest.fixture
def edc(site):
    return EnvironmentDiscoveryComponent(site.toolbox())


class TestParseStackName:
    @pytest.mark.parametrize("text,kind,version,compiler", [
        ("openmpi/1.4-intel", "Open MPI", "1.4", "intel"),
        ("openmpi-1.4.3-intel", "Open MPI", "1.4.3", "intel"),
        ("mvapich2-1.7a2-gnu", "MVAPICH2", "1.7a2", "gnu"),
        ("mpich2-1.3-pgi", "MPICH2", "1.3", "pgi"),
        ("gcc/4.4.5", None, None, None),
        ("random-junk", None, None, None),
    ])
    def test_parse(self, text, kind, version, compiler):
        assert parse_stack_name(text) == (kind, version, compiler)


class TestDiscover:
    def test_figure4_fields(self, edc):
        env = edc.discover()
        assert env.isa == "x86_64"
        assert env.os_type == "Linux"
        assert "CentOS" in env.distro
        assert env.libc_version == "2.5"
        assert env.libc_via == "exec"
        assert env.env_tool == "modules"
        assert len(env.stacks) == 2

    def test_stack_details(self, edc):
        env = edc.discover()
        intel = next(s for s in env.stacks
                     if s.compiler_family == "intel")
        assert intel.kind == "Open MPI"
        assert intel.version == "1.4"
        assert intel.prefix == "/opt/openmpi-1.4-intel"
        assert intel.compiler_version == "11.1"
        assert intel.via == "modules"

    def test_stacks_of_kind(self, edc):
        env = edc.discover()
        assert len(env.stacks_of_kind("Open MPI")) == 2
        assert env.stacks_of_kind("MPICH2") == []

    def test_softenv_site(self, make_site):
        site = make_site("softsite", module_system="softenv")
        env = EnvironmentDiscoveryComponent(site.toolbox()).discover()
        assert env.env_tool == "softenv"
        assert len(env.stacks) == 2
        assert all(s.via == "softenv" for s in env.stacks)

    def test_path_search_fallback(self, make_site):
        site = make_site("nomods", module_system="none")
        env = EnvironmentDiscoveryComponent(site.toolbox()).discover()
        assert env.env_tool is None
        assert len(env.stacks) == 2
        assert all(s.via == "path-search" for s in env.stacks)
        labels = sorted(s.label for s in env.stacks)
        assert labels == ["openmpi-1.4-gnu", "openmpi-1.4-intel"]

    def test_libc_api_fallback(self, site):
        # Break the banner: the EDC falls back to the C library API.
        toolbox = site.toolbox()
        original = toolbox.run_libc_binary
        toolbox.run_libc_binary = lambda path: None
        env = EnvironmentDiscoveryComponent(toolbox).discover()
        assert env.libc_version == "2.5"
        assert env.libc_via == "api"
        toolbox.run_libc_binary = original

    def test_libc_version_tuple(self, edc):
        assert edc.discover().libc_version_tuple == (2, 5)


class TestEnvForStack:
    def test_via_modules(self, site, edc):
        env_desc = edc.discover()
        stack = next(s for s in env_desc.stacks
                     if s.compiler_family == "intel")
        env = edc.env_for_stack(stack)
        assert "/opt/openmpi-1.4-intel/lib" in env.ld_library_path
        assert "/opt/intel-11.1/lib" in env.ld_library_path

    def test_via_path_heuristics(self, make_site):
        site = make_site("nomods2", module_system="none")
        edc = EnvironmentDiscoveryComponent(site.toolbox())
        stack = next(s for s in edc.discover().stacks
                     if s.compiler_family == "intel")
        env = edc.env_for_stack(stack)
        # Composed from the wrapper's CC= line and directory layout.
        assert "/opt/openmpi-1.4-intel/lib" in env.ld_library_path
        assert "/opt/intel-11.1/lib" in env.ld_library_path


class TestMissingLibraries:
    def _describe(self, site, stack_slug="openmpi-1.4-intel"):
        from repro.core.description import BinaryDescriptionComponent
        from repro.toolchain.compilers import Language
        stack = site.find_stack(stack_slug)
        app = site.compile_mpi_program("edc-app", Language.FORTRAN, stack)
        site.machine.fs.write("/home/user/edc-app", app.image, mode=0o755)
        bdc = BinaryDescriptionComponent(site.toolbox())
        return bdc.describe("/home/user/edc-app")

    def test_nothing_missing_with_stack_loaded(self, site, edc):
        description = self._describe(site)
        stack = site.find_stack("openmpi-1.4-intel")
        missing, unsatisfied = edc.missing_libraries(
            description, site.env_with_stack(stack),
            binary_path="/home/user/edc-app")
        assert missing == [] and unsatisfied == []

    def test_missing_without_stack(self, site, edc):
        description = self._describe(site)
        missing, _ = edc.missing_libraries(
            description, site.machine.env.copy(),
            binary_path="/home/user/edc-app")
        assert "libmpi.so.0" in missing
        assert "libifcore.so.5" in missing

    def test_description_only_mode(self, site, edc):
        # Binary absent at the target (both-phases mode): the check works
        # from the description alone.
        description = self._describe(site)
        stack = site.find_stack("openmpi-1.4-intel")
        missing, _ = edc.missing_libraries(
            description, site.env_with_stack(stack), binary_path=None)
        assert missing == []
        missing2, _ = edc.missing_libraries(
            description, site.machine.env.copy(), binary_path=None)
        assert "libmpi.so.0" in missing2

    def test_unsatisfied_versions_detected(self, site, edc, make_site):
        # A gcc-4.4 C++ binary demands GLIBCXX_3.4.13; this site's
        # libstdc++ (gcc 4.1.2) tops out at 3.4.8.
        from repro.toolchain.compilers import Language
        donor = make_site("newgcc", system_gnu_version="4.4.5")
        stack = donor.find_stack("openmpi-1.4-gnu")
        app = donor.compile_mpi_program("cxxapp", Language.CXX, stack)
        site.machine.fs.write("/home/user/cxxapp", app.image, mode=0o755)
        from repro.core.description import BinaryDescriptionComponent
        description = BinaryDescriptionComponent(
            site.toolbox()).describe("/home/user/cxxapp")
        target_stack = site.find_stack("openmpi-1.4-gnu")
        _missing, unsatisfied = edc.missing_libraries(
            description, site.env_with_stack(target_stack),
            binary_path="/home/user/cxxapp")
        assert ("libstdc++.so.6", "GLIBCXX_3.4.13") in unsatisfied
