"""Faults meet the engine: degrade, quarantine, journal, resume.

The integration contract from ISSUE 5: an injected fault never crashes
a matrix run -- the cell degrades to UNKNOWN carrying its failure
provenance, repeated failures open the site's circuit breaker, a
crashed worker loses only its own unfinished column, a failed staging
plan rolls back, and a journaled run resumes without re-evaluating
completed cells.  Everything is seeded, so two chaos runs with one
seed are byte-identical.
"""

import pytest

from repro import obs
from repro.core.engine import EngineBinary, EvaluationEngine
from repro.core.resilience import MatrixJournal
from repro.sysmodel import faults
from repro.sysmodel.faults import FaultKind, FaultPlan, FaultSpec
from repro.sysmodel.fs import FsError
from repro.toolchain.compilers import Language


@pytest.fixture
def compiled_app(make_site):
    donor = make_site("res-donor")
    stack = donor.find_stack("openmpi-1.4-intel")
    return donor.compile_mpi_program("r-app", Language.FORTRAN, stack)


def _binaries(compiled_app, count=1):
    return [EngineBinary(binary_id=f"r-app-{i}", image=compiled_app.image)
            for i in range(count)]


def always(kind, sites=("*",), **kwargs):
    return FaultSpec(kind=kind, sites=sites, rate=1.0, **kwargs)


class TestDegradedCells:
    def test_persistent_discovery_fault_degrades_not_crashes(
            self, make_site, compiled_app):
        sites = [make_site("deg-a"), make_site("deg-b")]
        plan = FaultPlan([always(FaultKind.DISCOVERY_TIMEOUT,
                                 sites=("deg-a",))])
        engine = EvaluationEngine()
        with faults.injecting(plan):
            result = engine.evaluate_matrix(
                _binaries(compiled_app), sites)
        assert len(result.cells) == 2
        faulted = result.cell("r-app-0", "deg-a")
        clean = result.cell("r-app-0", "deg-b")
        assert faulted.faulted
        assert faulted.outcome_word == "unknown"
        provenance = faulted.report.failure
        assert provenance.kind == "discovery-timeout"
        assert provenance.attempts > 1          # retries were spent
        assert provenance.retry_seconds > 0.0
        assert not clean.faulted                # the other site is fine

    def test_transient_fault_is_absorbed_by_retries(
            self, make_site, compiled_app):
        site = make_site("transient")
        plan = FaultPlan([always(FaultKind.DISCOVERY_TIMEOUT,
                                 transient=True, fires=1)])
        engine = EvaluationEngine()
        with obs.capture() as collector:
            with faults.injecting(plan):
                result = engine.evaluate_matrix(
                    _binaries(compiled_app), [site])
        (cell,) = result.cells
        assert not cell.faulted                 # the retry succeeded
        counters = collector.metrics.to_dict()["counters"]
        assert counters["resilience.retries.total"] >= 1
        assert counters["resilience.faults.injected"] >= 1
        # The backoff is charged to the cell in simulated seconds.
        assert cell.report.feam_seconds > engine.config.feam_base_seconds

    def test_degraded_cells_are_never_cached(self, make_site,
                                             compiled_app):
        site = make_site("uncached")
        plan = FaultPlan([always(FaultKind.READ_ERROR)])
        engine = EvaluationEngine()
        with faults.injecting(plan):
            first = engine.evaluate_matrix(_binaries(compiled_app),
                                           [site])
        assert first.cells[0].faulted
        # Fault gone: the same engine re-evaluates instead of serving
        # the degraded report from cache.
        second = engine.evaluate_matrix(_binaries(compiled_app), [site])
        assert not second.cells[0].faulted
        assert not second.cells[0].report.cache.evaluation_hit

    def test_render_surfaces_faults_and_provenance(self, make_site,
                                                   compiled_app):
        site = make_site("rendered")
        plan = FaultPlan([always(FaultKind.READ_ERROR)])
        engine = EvaluationEngine()
        with faults.injecting(plan):
            result = engine.evaluate_matrix(_binaries(compiled_app),
                                            [site])
        text = result.render(verbose=True)
        assert "degraded to unknown" in text
        assert "fault:" in text
        assert "read-error" in text


class TestCircuitBreaker:
    def test_repeated_failures_quarantine_the_site(self, make_site,
                                                   compiled_app):
        sites = [make_site("quar-bad"), make_site("quar-ok")]
        plan = FaultPlan([always(FaultKind.READ_ERROR,
                                 sites=("quar-bad",))])
        engine = EvaluationEngine()
        with faults.injecting(plan):
            result = engine.evaluate_matrix(
                _binaries(compiled_app, count=6), sites)
        assert "quar-bad" in result.quarantined
        assert "quar-ok" not in result.quarantined
        assert engine.site_health()["quar-bad"] == "open"
        assert engine.site_health()["quar-ok"] == "closed"
        # Later cells short-circuited: quarantine provenance, zero
        # attempts, no retry budget burned.
        kinds = [c.report.failure.kind for c in result.cells
                 if c.site_name == "quar-bad"]
        assert "breaker-open" in kinds
        quarantined = next(c for c in result.cells
                           if c.site_name == "quar-bad"
                           and c.report.failure.kind == "breaker-open")
        assert quarantined.report.failure.attempts == 0
        assert "quarantined sites (circuit breaker open): quar-bad" \
            in result.render()
        # The healthy site's column is untouched.
        assert all(not c.faulted for c in result.cells
                   if c.site_name == "quar-ok")


class TestWorkerCrash:
    def test_one_dying_worker_degrades_only_its_column(
            self, make_site, compiled_app, monkeypatch):
        sites = [make_site("wk-bad"), make_site("wk-ok")]
        engine = EvaluationEngine()
        real = EvaluationEngine.evaluate_cell

        def crashing(self, site, *args, **kwargs):
            if site.name == "wk-bad":
                raise MemoryError("worker died outside the cell guard")
            return real(self, site, *args, **kwargs)

        monkeypatch.setattr(EvaluationEngine, "evaluate_cell", crashing)
        with obs.capture() as collector:
            result = engine.evaluate_matrix(
                _binaries(compiled_app, count=2), sites)
        # Every cell exists; the crashed column is UNKNOWN + provenance.
        assert len(result.cells) == 4
        for cell in result.cells:
            if cell.site_name == "wk-bad":
                assert cell.outcome_word == "unknown"
                assert cell.report.failure.operation == "worker"
                assert cell.report.failure.kind == "MemoryError"
            else:
                assert not cell.faulted
        counters = collector.metrics.to_dict()["counters"]
        assert counters["resilience.workers.failed"] == 1
        assert any(e.name == "resilience.worker_failed"
                   for e in collector.events.events)


class TestResolutionRollback:
    def test_mid_plan_copy_failure_rolls_back_staged_files(
            self, make_site, monkeypatch):
        # The scenario from test_core_resolution: Intel runtimes missing
        # at the target, so resolve() stages several copies; the second
        # write dies and the first staged file must not survive.
        from repro.core.discovery import EnvironmentDiscoveryComponent
        from repro.core.resolution import ResolutionModel
        from repro.mpi.implementations import open_mpi
        from repro.sites.site import StackRequest
        from repro.toolchain.compilers import CompilerFamily
        from tests.test_core_resolution import _bundle_for

        donor = make_site("rb-donor")
        target = make_site(
            "rb-target", vendor_compilers=(),
            stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
        bundle = _bundle_for(donor)
        edc = EnvironmentDiscoveryComponent(target.toolbox())
        resolver = ResolutionModel(target.toolbox(), edc.discover())
        fs = target.machine.fs
        real_write = fs.write
        writes = {"n": 0}

        def dying_write(path, data, *args, **kwargs):
            if path.startswith("/home/user/stage"):
                writes["n"] += 1
                if writes["n"] == 2:
                    raise FsError("disk died mid-transfer")
            return real_write(path, data, *args, **kwargs)

        monkeypatch.setattr(fs, "write", dying_write)
        with obs.capture() as collector:
            with pytest.raises(FsError, match="disk died"):
                resolver.resolve(
                    ["libifcore.so.5", "libifport.so.5"], bundle,
                    target.machine.env.copy(), "/home/user/stage")
        # The first copy landed and was rolled back.
        assert writes["n"] == 2
        assert fs.listdir("/home/user/stage") == []
        rollbacks = [e for e in collector.events.events
                     if e.name == "resolution.rollback"]
        assert len(rollbacks) == 1
        assert rollbacks[0].attrs["rolled_back"] == 1
        assert "disk died" in rollbacks[0].attrs["reason"]
        counters = collector.metrics.to_dict()["counters"]
        assert counters["resolution.rollbacks"] == 1


class TestJournalAndResume:
    def test_resume_skips_completed_cells(self, make_site, compiled_app,
                                          tmp_path, monkeypatch):
        sites = [make_site("jr-a"), make_site("jr-b")]
        binaries = _binaries(compiled_app, count=2)
        path = str(tmp_path / "run.jsonl")
        engine = EvaluationEngine()
        with MatrixJournal(path) as journal:
            full = engine.evaluate_matrix(binaries, sites,
                                          journal=journal)
        assert journal.written == 4

        # Drop the journal's last line: one cell left to evaluate.
        lines = open(path).read().splitlines()
        truncated = str(tmp_path / "partial.jsonl")
        with open(truncated, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")

        fresh = EvaluationEngine()
        evaluated = []
        real = EvaluationEngine._evaluate_cell

        def spying(self, site, binary_path, image, binary_id, *rest):
            evaluated.append((binary_id, site.name))
            return real(self, site, binary_path, image, binary_id, *rest)

        monkeypatch.setattr(EvaluationEngine, "_evaluate_cell", spying)
        resumed_sites = [make_site("jr-a"), make_site("jr-b")]
        with MatrixJournal(truncated) as journal:
            resumed = fresh.evaluate_matrix(
                binaries, resumed_sites, journal=journal,
                resume=MatrixJournal.load(truncated))
        assert len(evaluated) == 1              # only the missing cell
        assert resumed.resumed == 3
        assert "resumed: 3 cell(s)" in resumed.render()
        # The resumed grid tells the same story as the full run's.
        for cell in resumed.cells:
            mate = full.cell(cell.binary_id, cell.site_name)
            assert cell.outcome_word == mate.outcome_word
            assert cell.ready == mate.ready
        # The journal converged: the missing cell was appended back.
        assert len(MatrixJournal.load(truncated)) == 4

    def test_restored_cells_report_no_wall_time_surprises(
            self, make_site, compiled_app, tmp_path):
        site = make_site("jr-c")
        path = str(tmp_path / "run.jsonl")
        engine = EvaluationEngine()
        with MatrixJournal(path) as journal:
            first = engine.evaluate_matrix(_binaries(compiled_app),
                                           [site], journal=journal)
        record = MatrixJournal.load(path)[("r-app-0", "jr-c")]
        assert record["feam_seconds"] == round(
            first.cells[0].report.feam_seconds, 6)
        assert record["fault"] is None


class TestChaosDeterminism:
    def _run(self, make_site, compiled_app, tmp_path, tag):
        """One full chaos run on fresh sites, returning (render, bytes)."""
        sites = [make_site("chaos-a"), make_site("chaos-b")]
        plan = FaultPlan.profile("flaky", seed=7)
        plan.arm(sites)
        path = tmp_path / f"{tag}.jsonl"
        engine = EvaluationEngine(max_workers=1)
        try:
            with faults.injecting(plan):
                with MatrixJournal(str(path)) as journal:
                    result = engine.evaluate_matrix(
                        _binaries(compiled_app, count=2), sites,
                        journal=journal)
        finally:
            FaultPlan.disarm(sites)
        return result.render(verbose=True), path.read_bytes(), plan

    def test_same_seed_runs_are_byte_identical(self, make_site,
                                               compiled_app, tmp_path):
        render_a, journal_a, plan_a = self._run(
            make_site, compiled_app, tmp_path, "a")
        render_b, journal_b, plan_b = self._run(
            make_site, compiled_app, tmp_path, "b")
        assert render_a == render_b
        assert journal_a == journal_b           # byte-identical journals
        assert plan_a.summary() == plan_b.summary()
        assert plan_a.injected > 0              # the runs did fault
