"""Bundle serialization round-trip and file-based two-phase workflow."""

import io
import tarfile

import pytest

from repro.core import Feam
from repro.core.bundlefile import (
    BundleFormatError,
    pack_bundle,
    unpack_bundle,
)
from repro.toolchain.compilers import Language


@pytest.fixture
def donor(make_site):
    return make_site("bf-donor")


@pytest.fixture
def bundle(donor):
    stack = donor.find_stack("openmpi-1.4-intel")
    app = donor.compile_mpi_program("bf-app", Language.FORTRAN, stack)
    donor.machine.fs.write("/home/user/bf-app", app.image, mode=0o755)
    return Feam().run_source_phase(donor, "/home/user/bf-app",
                                   env=donor.env_with_stack(stack))


class TestRoundTrip:
    def test_lossless(self, bundle):
        restored = unpack_bundle(pack_bundle(bundle))
        assert restored.description == bundle.description
        assert restored.created_at == bundle.created_at
        assert len(restored.libraries) == len(bundle.libraries)
        for original, back in zip(bundle.libraries, restored.libraries):
            assert back == original
        assert restored.guaranteed_environment == \
            bundle.guaranteed_environment
        assert restored.hello is not None
        assert restored.hello.images == bundle.hello.images

    def test_deterministic(self, bundle):
        assert pack_bundle(bundle) == pack_bundle(bundle)

    def test_archive_is_real_tar(self, bundle):
        archive = pack_bundle(bundle)
        with tarfile.open(fileobj=io.BytesIO(archive), mode="r:gz") as tar:
            names = tar.getnames()
        assert "MANIFEST.json" in names
        assert any(name.startswith("libs/libmpi.so.0") for name in names)
        assert "hello/c" in names

    def test_archive_smaller_than_copies(self, bundle):
        # gzip should compress the pseudo-random payloads at least a bit
        # (headers/symbol tables compress; payload entropy dominates).
        archive = pack_bundle(bundle)
        assert len(archive) < bundle.copy_bytes * 1.1


class TestFormatErrors:
    def test_not_an_archive(self):
        with pytest.raises(BundleFormatError):
            unpack_bundle(b"this is not a tarball")

    def test_missing_manifest(self):
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w:gz") as tar:
            info = tarfile.TarInfo("random.txt")
            info.size = 2
            tar.addfile(info, io.BytesIO(b"hi"))
        with pytest.raises(BundleFormatError, match="MANIFEST"):
            unpack_bundle(buffer.getvalue())

    def test_missing_library_member(self, bundle):
        archive = pack_bundle(bundle)
        # Rewrite the archive without one of the library members.
        src = tarfile.open(fileobj=io.BytesIO(archive), mode="r:gz")
        out = io.BytesIO()
        with tarfile.open(fileobj=out, mode="w:gz") as dst:
            for member in src.getmembers():
                if member.name == "libs/libmpi.so.0":
                    continue
                dst.addfile(member, src.extractfile(member))
        src.close()
        with pytest.raises(BundleFormatError, match="libmpi.so.0"):
            unpack_bundle(out.getvalue())

    def test_bad_version(self, bundle):
        import json
        archive = pack_bundle(bundle)
        src = tarfile.open(fileobj=io.BytesIO(archive), mode="r:gz")
        manifest = json.loads(src.extractfile("MANIFEST.json").read())
        manifest["format_version"] = 99
        out = io.BytesIO()
        with tarfile.open(fileobj=out, mode="w:gz") as dst:
            blob = json.dumps(manifest).encode()
            info = tarfile.TarInfo("MANIFEST.json")
            info.size = len(blob)
            dst.addfile(info, io.BytesIO(blob))
        src.close()
        with pytest.raises(BundleFormatError, match="version"):
            unpack_bundle(out.getvalue())


class TestFileBasedWorkflow:
    def test_archive_written_by_source_phase(self, donor):
        stack = donor.find_stack("openmpi-1.4-gnu")
        app = donor.compile_mpi_program("wf-app", Language.C, stack)
        donor.machine.fs.write("/home/user/wf-app", app.image, mode=0o755)
        feam = Feam()
        feam.run_source_phase(donor, "/home/user/wf-app",
                              env=donor.env_with_stack(stack),
                              write_archive=True)
        assert donor.machine.fs.is_file(
            "/home/user/feam/out/bundle-wf-app.tar.gz")

    def test_target_phase_from_archive(self, donor, bundle, make_site):
        from repro.mpi.implementations import open_mpi
        from repro.sites.site import StackRequest
        from repro.toolchain.compilers import CompilerFamily
        target = make_site(
            "bf-target", vendor_compilers=(),
            stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
        # The user copies the archive across sites.
        archive = pack_bundle(bundle)
        target.machine.fs.write("/home/user/bundle.tar.gz", archive)
        report = Feam().run_target_phase(
            target, bundle_path="/home/user/bundle.tar.gz",
            staging_tag="from-archive")
        # Binary absent at the target: prediction from the bundle alone,
        # with resolution staging the Intel runtime.
        assert report.ready
        assert report.resolution is not None and report.resolution.staged
