"""Experiment-harness internals: naive selection, tagging, accounting."""

import pytest

from repro.corpus.benchmarks import Suite, benchmark
from repro.corpus.builder import CompiledBinary
from repro.evaluation.experiment import _naive_stack, _safe_tag
from repro.mpi.stack import MpiStackSpec
from repro.mpi.implementations import mpich2, mvapich2, open_mpi
from repro.mpi.stack import Interconnect
from repro.toolchain.compilers import CompilerFamily, gnu, intel


def _binary(site, release, compiler, name="nas.bt"):
    spec = MpiStackSpec(release, compiler, Interconnect.INFINIBAND)
    return CompiledBinary(
        benchmark=benchmark(name), build_site=site,
        stack_slug=spec.slug, stack_spec=spec, image=b"\x7fELF-fake",
        path=f"/home/user/{name}")


class TestNaiveStackSelection:
    def test_prefers_same_compiler_family(self, paper_sites_by_name):
        india = paper_sites_by_name["india"]
        intel_binary = _binary("fir", open_mpi("1.4"), intel("12.0"))
        chosen = _naive_stack(india, intel_binary)
        assert chosen.spec.compiler.family is CompilerFamily.INTEL
        gnu_binary = _binary("fir", open_mpi("1.4"), gnu("4.1.2"))
        chosen = _naive_stack(india, gnu_binary)
        assert chosen.spec.compiler.family is CompilerFamily.GNU

    def test_falls_back_to_any_family(self, paper_sites_by_name):
        # forge's MVAPICH2 is intel-only; a gnu-built MVAPICH binary
        # still gets the matching implementation.
        forge = paper_sites_by_name["forge"]
        gnu_binary = _binary("india", mvapich2("1.7a2"), gnu("4.1.2"))
        chosen = _naive_stack(forge, gnu_binary)
        assert chosen is not None
        assert chosen.spec.kind.value == "MVAPICH2"

    def test_none_when_no_matching_impl(self, paper_sites_by_name):
        blacklight = paper_sites_by_name["blacklight"]
        mpich_binary = _binary("india", mpich2("1.4"), gnu("4.1.2"))
        assert _naive_stack(blacklight, mpich_binary) is None

    def test_deterministic_tiebreak(self, paper_sites_by_name):
        fir = paper_sites_by_name["fir"]
        binary = _binary("india", open_mpi("1.4"), gnu("4.1.2"))
        first = _naive_stack(fir, binary)
        second = _naive_stack(fir, binary)
        assert first.spec.slug == second.spec.slug


class TestSafeTag:
    def test_sanitises_ids(self):
        tag = _safe_tag("nas.bt@fir/openmpi-1.4-intel", "basic")
        assert "/" not in tag and "@" not in tag
        assert tag.endswith("-basic")

    def test_distinct_modes_distinct_tags(self):
        a = _safe_tag("x@y/z", "basic")
        b = _safe_tag("x@y/z", "ext")
        assert a != b


class TestFeamUsesDebugQueue:
    def test_hello_jobs_accounted_in_debug_queue(self, make_site):
        """Section VI.C: FEAM runs via the debug queue and its CPU hours
        are measurable through the site's accounting."""
        from repro.core import Feam
        from repro.toolchain.compilers import Language
        donor = make_site("acct-donor")
        target = make_site("acct-target")
        stack = donor.find_stack("openmpi-1.4-gnu")
        app = donor.compile_mpi_program("acct-app", Language.C, stack)
        donor.machine.fs.write("/home/user/acct-app", app.image, mode=0o755)
        feam = Feam()
        bundle = feam.run_source_phase(donor, "/home/user/acct-app",
                                       env=donor.env_with_stack(stack))
        target.machine.fs.write("/home/user/acct-app", app.image,
                                mode=0o755)
        feam.run_target_phase(target, binary_path="/home/user/acct-app",
                              bundle=bundle, staging_tag="acct")
        feam_jobs = [r for r in target.scheduler.records
                     if r.name.startswith("feam:")]
        assert feam_jobs
        assert all(job.queue == "debug" for job in feam_jobs)
        assert target.scheduler.cpu_hours_for("feam:") > 0
