"""Cross-ISA scenarios: the determinant the paper's evaluation never
exercises (all five sites were x86-64) but the model defines."""

import pytest

from repro.core import Feam
from repro.core.evaluation import isa_compatible
from repro.sysmodel.errors import FailureKind
from repro.toolchain.compilers import Language


class TestIsaCompatibilityRule:
    @pytest.mark.parametrize("binary_isa,bits,target,ok", [
        ("x86-64", 64, "x86_64", True),
        ("i386", 32, "x86_64", True),   # 64-bit x86 runs 32-bit x86
        ("x86-64", 64, "i686", False),  # not the other way around
        ("i386", 32, "i686", True),
        ("powerpc64", 64, "ppc64", True),
        ("powerpc", 32, "ppc64", True),
        ("x86-64", 64, "ppc64", False),
        ("ia64", 64, "x86_64", False),
    ])
    def test_rule(self, binary_isa, bits, target, ok):
        assert isa_compatible(binary_isa, bits, target) is ok


class TestI686Site:
    @pytest.fixture
    def i686_site(self, make_site):
        return make_site("oldbox", arch="i686")

    def test_site_builds_32bit(self, i686_site):
        fs = i686_site.machine.fs
        assert fs.is_symlink("/lib/libc.so.6")
        from repro.elf import describe_elf
        info = describe_elf(fs.read("/lib/libc.so.6"))
        assert info.bits == 32

    def test_local_32bit_app_runs(self, i686_site):
        stack = i686_site.find_stack("openmpi-1.4-gnu")
        app = i686_site.compile_mpi_program("app32", Language.C, stack)
        from repro.elf import describe_elf
        assert describe_elf(app.image).bits == 32
        result = i686_site.run_with_retries("app32", app.image, stack)
        assert result.ok

    def test_64bit_binary_rejected(self, i686_site, mini_site):
        stack64 = mini_site.find_stack("openmpi-1.4-gnu")
        app64 = mini_site.compile_mpi_program("app64", Language.C, stack64)
        failure, _ = i686_site.machine.check_loadable(app64.image)
        assert failure.failure.kind is FailureKind.EXEC_FORMAT

    def test_feam_predicts_isa_failure(self, i686_site, mini_site):
        stack64 = mini_site.find_stack("openmpi-1.4-gnu")
        app64 = mini_site.compile_mpi_program("app64b", Language.C, stack64)
        i686_site.machine.fs.write("/home/user/app64b", app64.image,
                                   mode=0o755)
        report = Feam().run_target_phase(
            i686_site, binary_path="/home/user/app64b", staging_tag="isa")
        assert not report.ready
        from repro.core.prediction import Determinant
        assert report.prediction.determinant(
            Determinant.ISA).passed is False
        # Short-circuits: no MPI stack testing happens.
        assert report.prediction.stack_assessments == ()

    def test_32bit_binary_runs_on_64bit_site(self, i686_site, make_site):
        """Multi-arch: an i386 binary loads on x86_64 when 32-bit
        libraries are present (here: migrated via FEAM staging)."""
        stack32 = i686_site.find_stack("openmpi-1.4-gnu")
        app32 = i686_site.compile_mpi_program("app32m", Language.C, stack32)
        target = make_site("target64")
        # FEAM's ISA determinant accepts it...
        target.machine.fs.write("/home/user/app32m", app32.image,
                                mode=0o755)
        from repro.core.prediction import Determinant
        report = Feam().run_target_phase(
            target, binary_path="/home/user/app32m", staging_tag="isa32")
        assert report.prediction.determinant(Determinant.ISA).passed is True
        # ...but the 64-bit site has no 32-bit libraries, so the
        # shared-library determinant correctly fails.
        assert not report.ready
