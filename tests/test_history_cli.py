"""``feam runs`` / ``feam compare`` / ``feam drift`` end to end.

The ledger-backed CLI surface CI's history-gate job drives: matrix and
chaos invocations record manifests (two runs -> two entries), the
listing/show/import verbs round-trip them, and the compare gate exits
3 on an attributed slowdown while staying 0 on identical runs.  Also
pins the fail-fast paths: ``feam watch --attach`` against a dead
server and ``feam query`` on a missing file exit 1 with one clean
line, not a traceback or a poll loop.
"""

import json
import os

import pytest

from repro.__main__ import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SLO_VIOLATION,
    feam_main,
)
from repro.obs.ledger import RunLedger, latency_digest


def ledger_dir():
    """The per-test warehouse the autouse conftest fixture points at."""
    return os.environ["FEAM_LEDGER_DIR"]


def seeded_ledger():
    """Two matrix manifests and one slower chaos manifest."""
    ledger = RunLedger(ledger_dir())
    for run_id, kind, mean in (("run-a", "matrix", 10.0),
                               ("run-b", "matrix", 10.0),
                               ("run-c", "chaos", 15.0)):
        ledger.record({
            "run_id": run_id, "kind": kind, "seed": 7,
            "rollup": {
                "cells": 10,
                "outcomes": {"ready": 10},
                "sim": latency_digest([mean] * 10),
                "cache": {"hit_rate": 0.5},
                "retries": 0, "faulted": 0,
            },
            "phases": {"cell.sim": latency_digest([mean] * 10)},
        })
    return ledger


class TestMatrixRecordsLedger:
    def test_two_invocations_two_entries(self, capsys):
        for _ in range(2):
            assert feam_main(["matrix", "--binaries", "1",
                              "--seed", "7"]) == EXIT_OK
        err = capsys.readouterr().err
        assert err.count("ledger: run ") == 2
        runs = RunLedger(ledger_dir()).runs()
        assert len(runs) == 2
        assert {run["kind"] for run in runs} == {"matrix"}
        assert len({run["run_id"] for run in runs}) == 2
        rollup = runs[0]["rollup"]
        assert rollup["cells"] == 5            # 1 binary x 5 sites
        assert runs[0]["phases"]["cell.sim"]["count"] == 5
        assert runs[0]["config_fingerprint"]

    def test_no_ledger_records_nothing(self, capsys):
        assert feam_main(["matrix", "--binaries", "1", "--seed", "7",
                          "--no-ledger"]) == EXIT_OK
        assert RunLedger(ledger_dir()).runs() == []

    def test_ledger_output_stays_off_stdout(self, capsys):
        # The chaos-gate CI job compares stdout byte for byte; all
        # ledger chatter must live on stderr.
        assert feam_main(["matrix", "--binaries", "1",
                          "--seed", "7"]) == EXIT_OK
        out, err = capsys.readouterr()
        assert "ledger" not in out
        assert "ledger: run " in err

    def test_chaos_records_fault_profile(self, capsys):
        assert feam_main(["chaos", "--binaries", "1", "--seed", "7",
                          "--profile", "flaky"]) == EXIT_OK
        (run,) = RunLedger(ledger_dir()).runs()
        assert run["kind"] == "chaos"
        assert run["fault_profile"] == "flaky"


class TestRunsVerb:
    def test_list_table_and_where(self, capsys):
        seeded_ledger()
        assert feam_main(["runs"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "3/3 run(s) match" in out
        assert "run-c" in out
        assert feam_main(["runs", "--where", "kind=chaos"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "1/3 run(s) match" in out
        assert "run-a" not in out

    def test_json_listing(self, capsys):
        seeded_ledger()
        assert feam_main(["runs", "--json", "--where",
                          "kind=matrix"]) == EXIT_OK
        runs = json.loads(capsys.readouterr().out)
        assert [run["run_id"] for run in runs] == ["run-a", "run-b"]

    def test_show_resolves_prefix(self, capsys):
        seeded_ledger()
        assert feam_main(["runs", "show", "run-c"]) == EXIT_OK
        shown = json.loads(capsys.readouterr().out)
        assert shown["kind"] == "chaos"

    def test_show_unknown_ref_fails_cleanly(self, capsys):
        seeded_ledger()
        assert feam_main(["runs", "show", "nope"]) == EXIT_FAILURE
        assert "no run matches" in capsys.readouterr().err

    def test_empty_ledger_lists_nothing(self, capsys):
        assert feam_main(["runs"]) == EXIT_OK
        assert "(no runs)" in capsys.readouterr().out

    def test_unknown_action_fails(self, capsys):
        assert feam_main(["runs", "frobnicate"]) == EXIT_FAILURE
        assert "unknown feam runs action" in capsys.readouterr().err


class TestRunsImport:
    def legacy_history(self, tmp_path):
        path = tmp_path / "history.jsonl"
        lines = [
            {"ts": "2026-01-01T00:00:00Z", "seed": 1,
             "cells": 20, "cold_seconds": 1.0, "warm_seconds": 0.1},
            {"ts": "2026-01-02T00:00:00Z", "kind": "fleet",
             "spec": "fleet:n=10", "cells": 40, "eval_seconds": 2.0},
        ]
        path.write_text("".join(json.dumps(line) + "\n"
                                for line in lines))
        return path

    def test_import_tags_kinds_and_is_idempotent(self, tmp_path,
                                                 capsys):
        history = self.legacy_history(tmp_path)
        assert feam_main(["runs", "import", str(history)]) == EXIT_OK
        assert "imported 2 run(s)" in capsys.readouterr().out
        runs = RunLedger(ledger_dir()).runs()
        assert [run["kind"] for run in runs] \
            == ["legacy-bench", "legacy-fleet-bench"]
        assert all(run["schema"] == 1 for run in runs)
        assert runs[1]["sites_spec"] == "fleet:n=10"
        # Re-import: every line already present, nothing doubled.
        assert feam_main(["runs", "import", str(history)]) == EXIT_OK
        assert "imported 0 run(s)" in capsys.readouterr().out
        assert len(RunLedger(ledger_dir()).runs()) == 2

    def test_imported_runs_feed_drift(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        history.write_text("".join(
            json.dumps({"ts": f"2026-01-0{i}T00:00:00Z", "seed": 1,
                        "cold_seconds": cold}) + "\n"
            for i, cold in ((1, 1.0), (2, 2.0))))
        assert feam_main(["runs", "import", str(history)]) == EXIT_OK
        capsys.readouterr()
        assert feam_main(["drift", "--tolerance", "0.25"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "legacy-bench" in out
        assert "bench.cold_seconds" in out

    def test_missing_history_fails_cleanly(self, tmp_path, capsys):
        assert feam_main(["runs", "import",
                          str(tmp_path / "nope.jsonl")]) == EXIT_FAILURE
        assert "cannot read history" in capsys.readouterr().err


class TestCompareVerb:
    def test_clean_pair_exits_ok(self, capsys):
        seeded_ledger()
        assert feam_main(["compare", "run-a", "run-b",
                          "--fail-above", "1.03"]) == EXIT_OK
        assert "no latency row above" in capsys.readouterr().out

    def test_slowdown_trips_the_gate(self, capsys):
        seeded_ledger()
        assert feam_main(["compare", "run-b", "run-c",
                          "--fail-above", "1.2"]) == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "phase cell.sim" in out

    def test_json_payload_carries_the_verdict(self, capsys):
        seeded_ledger()
        assert feam_main(["compare", "-2", "-1", "--fail-above", "1.2",
                          "--json"]) == EXIT_REGRESSION
        payload = json.loads(capsys.readouterr().out)
        assert payload["fail_above"] == 1.2
        assert payload["regressions"]
        assert payload["sim"]["ratio"] == pytest.approx(1.5)

    def test_without_gate_always_ok(self, capsys):
        seeded_ledger()
        assert feam_main(["compare", "run-b", "run-c"]) == EXIT_OK

    def test_bad_reference_is_operational_failure(self, capsys):
        seeded_ledger()
        assert feam_main(["compare", "run-a", "zzz"]) == EXIT_FAILURE
        assert "no run matches" in capsys.readouterr().err

    def test_empty_ledger_is_operational_failure(self, capsys):
        assert feam_main(["compare", "-2", "-1"]) == EXIT_FAILURE
        assert "has no runs" in capsys.readouterr().err


class TestDriftVerb:
    def test_stable_history_exits_ok(self, capsys):
        seeded_ledger()
        # Latest run is chaos with no chaos predecessors: degrade to
        # "nothing to drift against", not an error.
        assert feam_main(["drift"]) == EXIT_OK
        assert "nothing to drift against" in capsys.readouterr().out

    def test_violated_rules_exit_2(self, tmp_path, capsys):
        seeded_ledger()
        rules = tmp_path / "rules.txt"
        rules.write_text("rollup.cells >= 100\n")
        assert feam_main(["drift", "--rules", str(rules)]) \
            == EXIT_SLO_VIOLATION
        assert "FAIL rollup.cells" in capsys.readouterr().out

    def test_empty_ledger_is_operational_failure(self, capsys):
        assert feam_main(["drift"]) == EXIT_FAILURE
        assert "at least one run" in capsys.readouterr().err

    def test_insufficient_history_notice_exits_ok(self, capsys):
        # Three matrix runs, latest against a --window of 10: only 2
        # same-kind predecessors exist.  That is a notice, not a page.
        ledger = RunLedger(ledger_dir())
        for run_id in ("run-a", "run-b", "run-c"):
            ledger.record({
                "run_id": run_id, "kind": "matrix", "seed": 7,
                "rollup": {"cells": 10, "outcomes": {"ready": 10},
                           "sim": latency_digest([10.0] * 10),
                           "cache": {"hit_rate": 0.5},
                           "retries": 0, "faulted": 0},
            })
        assert feam_main(["drift", "--window", "10"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "insufficient history (have 2, need 10)" in out

    def test_insufficient_history_flag_in_json(self, capsys):
        seeded_ledger()
        assert feam_main(["drift", "--window", "10", "--json"]) \
            == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["insufficient_history"] is True

    def test_full_window_has_no_notice(self, capsys):
        # Two matrix runs and window 1: the single predecessor fills
        # the window, so the notice must not appear.
        ledger = RunLedger(ledger_dir())
        for run_id in ("run-a", "run-b"):
            ledger.record({
                "run_id": run_id, "kind": "matrix", "seed": 7,
                "rollup": {"cells": 10, "outcomes": {"ready": 10},
                           "sim": latency_digest([10.0] * 10),
                           "cache": {"hit_rate": 0.5},
                           "retries": 0, "faulted": 0},
            })
        assert feam_main(["drift", "--window", "1"]) == EXIT_OK
        assert "insufficient history" \
            not in capsys.readouterr().out


class TestFailFast:
    def test_watch_attach_unreachable_exits_once(self, capsys):
        # Nothing listens on this port: one clean line, exit 1, no
        # three-strikes poll loop against a server that never existed.
        assert feam_main(["watch", "--attach",
                          "http://127.0.0.1:9",
                          "--interval", "0.1"]) == EXIT_FAILURE
        err = capsys.readouterr().err
        assert "cannot reach http://127.0.0.1:9" in err
        assert "lost" not in err

    def test_query_missing_file_exits_once(self, tmp_path, capsys):
        assert feam_main(["query", str(tmp_path / "gone.jsonl")]) \
            == EXIT_FAILURE
        assert "cannot read wide events" in capsys.readouterr().err
