"""Declarative SLO rules (repro.obs.slo): parsing, evaluation, alerts.

Rules are evaluated against plain ``MetricsRegistry.to_dict``
snapshots, so most tests build the snapshot by hand; the alerting test
checks that violations land on the installed collector as structured
``slo.violation`` events plus a counter tick.
"""

import pytest

from repro import obs
from repro.obs import slo


def snapshot(counters=None, gauges=None, histograms=None):
    return {"counters": counters or {}, "gauges": gauges or {},
            "histograms": histograms or {}}


class TestParsing:
    def test_basic_rule(self):
        rule = slo.parse_rule("engine.cache.hit_rate >= 0.5")
        assert rule.metric == "engine.cache.hit_rate"
        assert rule.op == ">=" and rule.threshold == 0.5
        assert not rule.optional
        assert rule.name == "engine.cache.hit_rate >= 0.5"

    def test_histogram_stat_and_optional_marker(self):
        rule = slo.parse_rule("engine.cell.wall_seconds:p95 <= 0.25 ?")
        assert rule.metric == "engine.cell.wall_seconds:p95"
        assert rule.optional

    @pytest.mark.parametrize("text", [
        "", "just words", "metric >=", ">= 5", "name <> 3",
        "name >= not-a-number",
    ])
    def test_unparsable_lines_raise(self, text):
        with pytest.raises(ValueError, match="unparsable SLO rule"):
            slo.parse_rule(text)

    def test_parse_rules_skips_comments_and_blanks(self):
        rules = slo.parse_rules("""
            # warm-run objectives
            a.b >= 1
            c.d <= 2  # trailing comment
        """)
        assert [r.metric for r in rules] == ["a.b", "c.d"]

    def test_scientific_notation_threshold(self):
        assert slo.parse_rule("a.b <= 2.5e-3").threshold == 2.5e-3

    def test_default_rules_parse(self):
        assert len(slo.DEFAULT_RULES) >= 3
        assert any(r.optional for r in slo.DEFAULT_RULES)

    def test_severity_tag(self):
        rule = slo.parse_rule("matrix.cells.total > 0 [critical]")
        assert rule.severity == "critical"
        assert rule.name == "matrix.cells.total > 0"
        assert slo.parse_rule("a.b >= 1 [warn]").severity == "warn"
        assert slo.parse_rule("a.b >= 1").severity == "warn"

    def test_severity_tag_composes_with_optional(self):
        rule = slo.parse_rule("a.b:p95 <= 0.5 ? [critical]")
        assert rule.optional and rule.severity == "critical"

    def test_unknown_severity_raises(self):
        with pytest.raises(ValueError):
            slo.parse_rule("a.b >= 1 [page-everyone]")

    def test_default_rules_carry_severities(self):
        severities = {r.severity for r in slo.DEFAULT_RULES}
        assert severities == {"critical", "warn"}

    def test_severity_in_render_and_dict(self):
        rules = slo.parse_rules("missing.metric > 0 [critical]")
        report = slo.evaluate(rules, snapshot())
        assert report.to_dict()["results"][0]["severity"] == "critical"
        assert "[critical]" in report.render()


class TestSelect:
    def test_gauge_wins_over_counter(self):
        rule = slo.parse_rule("x >= 1")
        snap = snapshot(counters={"x": 1}, gauges={"x": 2.0})
        assert rule.select(snap) == 2.0

    def test_counter_fallback(self):
        rule = slo.parse_rule("x >= 1")
        assert rule.select(snapshot(counters={"x": 7})) == 7

    def test_histogram_stat(self):
        rule = slo.parse_rule("h:p95 <= 1")
        snap = snapshot(histograms={"h": {"count": 3, "p95": 0.5}})
        assert rule.select(snap) == 0.5

    def test_unknown_histogram_stat_raises(self):
        rule = slo.parse_rule("h:p42 <= 1")
        snap = snapshot(histograms={"h": {"count": 3}})
        with pytest.raises(ValueError, match="unknown histogram stat"):
            rule.select(snap)

    def test_absent_is_none(self):
        rule = slo.parse_rule("nope <= 1")
        assert rule.select(snapshot()) is None


class TestEvaluate:
    def test_pass_fail_and_ops(self):
        rules = slo.parse_rules("""
            a >= 0.5
            b <= 10
            c > 0
            d < 1
            e == 3
        """)
        snap = snapshot(gauges={"a": 0.7, "b": 20.0, "c": 1.0,
                                "d": 0.5, "e": 3.0})
        report = slo.evaluate(rules, snap)
        by_metric = {r.rule.metric: r.status for r in report.results}
        assert by_metric == {"a": "pass", "b": "fail", "c": "pass",
                             "d": "pass", "e": "pass"}
        assert not report.ok
        assert [r.rule.metric for r in report.violations] == ["b"]

    def test_absent_mandatory_fails_absent_optional_skips(self):
        rules = [slo.parse_rule("gone >= 1"),
                 slo.parse_rule("also.gone >= 1 ?")]
        report = slo.evaluate(rules, snapshot())
        assert report.results[0].status == "fail"
        assert report.results[1].status == "skipped"
        assert report.results[1].ok and not report.results[0].ok

    def test_render_and_to_dict(self):
        rules = [slo.parse_rule("a >= 1"), slo.parse_rule("b >= 1 ?")]
        report = slo.evaluate(rules, snapshot(gauges={"a": 0.5}))
        text = report.render()
        assert "FAIL" in text and "SKIP" in text
        assert "1 violated" in text
        data = report.to_dict()
        assert data["ok"] is False
        assert data["results"][0]["status"] == "fail"
        assert data["results"][0]["observed"] == 0.5

    def test_empty_rules_report(self):
        report = slo.evaluate([], snapshot())
        assert report.ok
        assert report.render() == "(no SLO rules)"


class TestCheckAlerts:
    def test_violations_emit_events_and_counter(self):
        rules = [slo.parse_rule("present >= 10"),
                 slo.parse_rule("fine >= 0")]
        with obs.capture() as collector:
            collector.metrics.gauge("present").set(1.0)
            collector.metrics.gauge("fine").set(5.0)
            report = slo.check(rules)
            assert not report.ok
            violations = [e for e in collector.events.events
                          if e.name == "slo.violation"]
            assert len(violations) == 1
            assert violations[0].attrs["metric"] == "present"
            assert violations[0].attrs["observed"] == 1.0
            assert violations[0].attrs["threshold"] == 10.0
            assert collector.metrics.counter("slo.violations").value == 1

    def test_check_accepts_explicit_snapshot(self):
        report = slo.check([slo.parse_rule("g >= 1")],
                           snapshot(gauges={"g": 2.0}))
        assert report.ok

    def test_all_pass_emits_nothing(self):
        with obs.capture() as collector:
            collector.metrics.gauge("g").set(2.0)
            report = slo.check([slo.parse_rule("g >= 1")])
            assert report.ok
            assert not [e for e in collector.events.events
                        if e.name == "slo.violation"]
