"""Cross-validation against real system binaries and binutils.

These tests only run where real ELF binaries / binutils exist; they pin
the reader to reality rather than to our own writer.
"""

import os
import shutil
import subprocess

import pytest

from repro.elf import describe_elf, parse_elf, write_elf, BinarySpec
from repro.elf.reader import is_elf


def _read_real_binary():
    for candidate in ("/bin/ls", "/usr/bin/env", "/bin/cat"):
        try:
            with open(candidate, "rb") as fh:
                data = fh.read()
        except OSError:
            continue
        if is_elf(data):
            return candidate, data
    return None, None


REAL_PATH, REAL_DATA = _read_real_binary()

needs_real = pytest.mark.skipif(REAL_DATA is None,
                                reason="no real ELF binary found")
needs_binutils = pytest.mark.skipif(
    shutil.which("readelf") is None, reason="binutils not installed")


@needs_real
def test_parse_real_binary():
    info = describe_elf(REAL_DATA)
    assert info.is_dynamic
    assert "libc.so.6" in info.needed
    assert info.bits in (32, 64)


@needs_real
def test_real_binary_glibc_requirement():
    info = describe_elf(REAL_DATA)
    assert info.required_glibc is not None
    assert info.required_glibc.is_glibc()
    assert info.required_glibc.components >= (2,)


@needs_real
@needs_binutils
def test_needed_matches_real_readelf():
    out = subprocess.run(
        ["readelf", "-d", REAL_PATH], capture_output=True, text=True,
        check=True).stdout
    expected = []
    for line in out.splitlines():
        if "(NEEDED)" in line and "[" in line:
            expected.append(line.split("[", 1)[1].rstrip("]").strip())
    info = describe_elf(REAL_DATA)
    assert list(info.needed) == expected


@needs_real
def test_parse_real_shared_library():
    # Find the real libc via the binary's interpreter environment.
    for root in ("/lib/x86_64-linux-gnu", "/usr/lib/x86_64-linux-gnu",
                 "/lib64", "/usr/lib64"):
        path = os.path.join(root, "libc.so.6")
        if os.path.exists(path):
            with open(os.path.realpath(path), "rb") as fh:
                elf = parse_elf(fh.read())
            defs = {d.name.name for d in elf.version_definitions}
            assert any(name.startswith("GLIBC_2.") for name in defs)
            return
    pytest.skip("no system libc found")


@needs_binutils
def test_our_images_accepted_by_real_readelf(tmp_path):
    spec = BinarySpec(
        needed=("libmpi.so.0", "libc.so.6"),
        version_requirements={"libc.so.6": ("GLIBC_2.2.5", "GLIBC_2.3.4")},
        comment=("GCC: (GNU) 4.1.2",))
    path = tmp_path / "synthetic.elf"
    path.write_bytes(write_elf(spec))
    dyn = subprocess.run(["readelf", "-d", str(path)],
                         capture_output=True, text=True, check=True).stdout
    assert "libmpi.so.0" in dyn
    assert "libc.so.6" in dyn
    versions = subprocess.run(["readelf", "-V", str(path)],
                              capture_output=True, text=True, check=True
                              ).stdout
    assert "GLIBC_2.3.4" in versions


@needs_binutils
def test_our_verdefs_accepted_by_real_readelf(tmp_path):
    from repro.elf.constants import ElfType
    spec = BinarySpec(
        etype=ElfType.DYN, soname="libdemo.so.1",
        version_definitions=("libdemo.so.1", "DEMO_1.0"))
    path = tmp_path / "libdemo.so.1"
    path.write_bytes(write_elf(spec))
    out = subprocess.run(["readelf", "-V", str(path)],
                         capture_output=True, text=True, check=True).stdout
    assert "DEMO_1.0" in out
