"""Batch scheduler simulation tests."""

import pytest

from repro.sites.scheduler import (
    DEFAULT_QUEUES,
    Queue,
    Scheduler,
    SchedulerFlavor,
)
from repro.sysmodel.errors import ExecutionResult, FailureKind


@pytest.fixture
def scheduler():
    return Scheduler(SchedulerFlavor.PBS, "testsite", seed=42)


def _work(seconds=10.0, ok=True):
    if ok:
        return lambda: ExecutionResult.success(elapsed_seconds=seconds)
    return lambda: ExecutionResult.fail(
        FailureKind.SYSTEM_ERROR, "boom", elapsed_seconds=seconds)


def test_submit_advances_clock(scheduler):
    before = scheduler.clock_seconds
    record = scheduler.submit("job", _work(30.0), queue="debug", nprocs=4)
    assert scheduler.clock_seconds > before
    assert record.run_seconds == 30.0
    assert record.wait_seconds > 0


def test_cpu_hours_accounting(scheduler):
    scheduler.submit("a", _work(3600.0), queue="normal", nprocs=8)
    assert scheduler.total_cpu_hours == pytest.approx(8.0)
    scheduler.submit("feam:x", _work(60.0), queue="debug", nprocs=1)
    assert scheduler.cpu_hours_for("feam:") == pytest.approx(60.0 / 3600.0)


def test_walltime_capped_by_queue(scheduler):
    record = scheduler.submit("long", _work(10**6), queue="debug")
    assert record.run_seconds == scheduler.queues["debug"].max_walltime_seconds


def test_unknown_queue_rejected(scheduler):
    with pytest.raises(KeyError):
        scheduler.submit("x", _work(), queue="imaginary")


def test_wait_times_deterministic():
    a = Scheduler(SchedulerFlavor.PBS, "site", seed=7)
    b = Scheduler(SchedulerFlavor.PBS, "site", seed=7)
    ra = a.submit("j", _work())
    rb = b.submit("j", _work())
    assert ra.wait_seconds == rb.wait_seconds


def test_debug_queue_waits_less_than_normal(scheduler):
    debug = [scheduler.submit(f"d{i}", _work(), queue="debug").wait_seconds
             for i in range(20)]
    normal = [scheduler.submit(f"n{i}", _work(), queue="normal").wait_seconds
              for i in range(20)]
    assert max(debug) < min(normal)


def test_failure_recorded(scheduler):
    record = scheduler.submit("bad", _work(ok=False))
    assert not record.result.ok
    assert record.result.failure.kind is FailureKind.SYSTEM_ERROR


def test_job_ids_increment(scheduler):
    first = scheduler.submit("a", _work())
    second = scheduler.submit("b", _work())
    assert second.job_id == first.job_id + 1


def test_has_debug_queue(scheduler):
    assert scheduler.has_debug_queue()
    no_debug = Scheduler(SchedulerFlavor.SGE, "s", 1,
                         queues=(Queue("batch", 3600, 100.0),))
    assert not no_debug.has_debug_queue()


@pytest.mark.parametrize("flavor,serial_marker,parallel_marker", [
    (SchedulerFlavor.PBS, "#PBS -N", "#PBS -l nodes"),
    (SchedulerFlavor.SGE, "#$ -N", "#$ -pe mpi"),
    (SchedulerFlavor.SLURM, "#SBATCH -J", "#SBATCH -n"),
])
def test_submission_templates(flavor, serial_marker, parallel_marker):
    scheduler = Scheduler(flavor, "s", 1)
    assert serial_marker in scheduler.serial_template()
    parallel = scheduler.parallel_template()
    assert parallel_marker in parallel
    assert "{mpiexec}" in parallel


def test_default_queues_sensible():
    names = [q.name for q in DEFAULT_QUEUES]
    assert "debug" in names and "normal" in names
    debug = next(q for q in DEFAULT_QUEUES if q.name == "debug")
    assert debug.is_debug
    assert debug.max_walltime_seconds == 1800
