"""Unix tool emulation tests."""

import pytest

from repro.toolchain.compilers import Language
from repro.tools.toolbox import Toolbox, ToolUnavailable


@pytest.fixture
def site(make_site):
    return make_site("toolsite")


@pytest.fixture
def toolbox(site):
    return Toolbox(site.machine)


@pytest.fixture
def app_path(site):
    stack = site.find_stack("openmpi-1.4-intel")
    app = site.compile_mpi_program("tool-test-app", Language.FORTRAN, stack)
    site.machine.fs.write("/home/user/app", app.image, mode=0o755)
    return "/home/user/app"


class TestObjdump:
    def test_basic_fields(self, toolbox, app_path):
        info = toolbox.objdump_p(app_path)
        assert info.file_format == "elf64-x86-64"
        assert info.bits == 64
        assert info.is_dynamic
        assert "libmpi.so.0" in info.needed
        assert info.needed[-1] == "libc.so.6"

    def test_version_references(self, toolbox, app_path):
        info = toolbox.objdump_p(app_path)
        refs = dict()
        for filename, version in info.version_references:
            refs.setdefault(filename, []).append(version)
        assert any(v.startswith("GLIBC_") for v in refs["libc.so.6"])
        assert "GFORTRAN_1.0" in refs.get("libifcore.so.5", []) or \
            "libgfortran.so.1" not in info.needed

    def test_shared_library_soname(self, toolbox, site):
        info = toolbox.objdump_p("/usr/lib64/libgfortran.so.1")
        assert info.soname == "libgfortran.so.1"
        assert "GFORTRAN_1.0" in info.version_definitions

    def test_render_contains_dynamic_section(self, toolbox, app_path):
        text = toolbox.objdump_p(app_path).render()
        assert "Dynamic Section:" in text
        assert "NEEDED" in text
        assert "Version References:" in text

    def test_missing_file(self, toolbox):
        from repro.sysmodel.fs import FsError
        with pytest.raises(FsError):
            toolbox.objdump_p("/nonexistent")

    def test_unavailable(self, site, app_path):
        limited = Toolbox(site.machine, frozenset({"ldd"}))
        with pytest.raises(ToolUnavailable):
            limited.objdump_p(app_path)


class TestReadelfComment:
    def test_compiler_banner(self, toolbox, app_path):
        comment = toolbox.readelf_comment(app_path)
        assert any(c.startswith("Intel") for c in comment)


class TestLdd:
    def test_resolves_with_stack_env(self, site, toolbox, app_path):
        stack = site.find_stack("openmpi-1.4-intel")
        env = site.env_with_stack(stack)
        result = toolbox.ldd(app_path, env)
        assert result.recognised
        assert result.missing == ()
        resolved = {e.soname: e.path for e in result.entries}
        assert resolved["libmpi.so.0"].startswith(stack.libdir)

    def test_reports_missing_without_env(self, toolbox, app_path, site):
        result = toolbox.ldd(app_path, site.machine.env)
        assert "libmpi.so.0" in result.missing
        assert "not found" in result.render()

    def test_version_information_present(self, site, toolbox, app_path):
        env = site.env_with_stack(site.find_stack("openmpi-1.4-intel"))
        result = toolbox.ldd(app_path, env)
        versions = {v for _req, v, _lib, _path in result.version_info}
        assert any(v.startswith("GLIBC_") for v in versions)

    def test_static_binary_not_dynamic(self, site, toolbox):
        from repro.elf import BinarySpec, write_elf
        site.machine.fs.write("/home/user/static",
                              write_elf(BinarySpec(statically_linked=True)),
                              mode=0o755)
        result = toolbox.ldd("/home/user/static")
        assert not result.recognised
        assert "not a dynamic executable" in result.render()

    def test_pgi_binary_quirk(self, make_site):
        """Section V.A: ldd cannot be relied on for every binary."""
        from repro.mpi.implementations import open_mpi
        from repro.sites.site import StackRequest
        from repro.toolchain.compilers import CompilerFamily, pgi
        site = make_site(
            "pgisite", vendor_compilers=(pgi("10.3"),),
            stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.PGI),))
        stack = site.find_stack("openmpi-1.4-pgi")
        app = site.compile_mpi_program("papp", Language.FORTRAN, stack)
        site.machine.fs.write("/home/user/papp", app.image, mode=0o755)
        result = Toolbox(site.machine).ldd("/home/user/papp")
        assert not result.recognised


class TestSearch:
    def test_locate_finds_everywhere(self, toolbox):
        hits = toolbox.locate("libimf.so")
        assert "/opt/intel-11.1/lib/libimf.so" in hits

    def test_search_falls_back_to_find(self, site):
        limited = Toolbox(site.machine,
                          Toolbox.ALL_TOOLS - frozenset({"locate"}))
        hits = limited.search_library("libimf.so")
        assert any("intel" in h for h in hits)

    def test_loader_visible_respects_env(self, site, toolbox):
        from repro.sysmodel.env import Environment
        assert toolbox.loader_visible_library(
            "libimf.so", site.machine.env) is None  # /opt not loaded
        env = Environment({"LD_LIBRARY_PATH": "/opt/intel-11.1/lib"})
        assert toolbox.loader_visible_library("libimf.so", env) == \
            "/opt/intel-11.1/lib/libimf.so"

    def test_loader_visible_trusted_dirs(self, toolbox):
        assert toolbox.loader_visible_library("libz.so.1") == \
            "/usr/lib64/libz.so.1"

    def test_search_library_stem(self, toolbox):
        hits = toolbox.search_library_stem("libmpi")
        assert any(h.endswith("libmpi.so.0") for h in hits)


class TestSystemQueries:
    def test_uname(self, toolbox):
        assert toolbox.uname_p() == "x86_64"

    def test_cat_proc_version(self, toolbox):
        assert "Linux version" in toolbox.cat("/proc/version")

    def test_list_glob(self, toolbox):
        releases = toolbox.list_glob("/etc", "release")
        assert "/etc/redhat-release" in releases

    def test_run_libc_binary(self, toolbox):
        banner = toolbox.run_libc_binary("/lib64/libc.so.6")
        assert banner is not None and "2.5" in banner

    def test_run_libc_binary_missing(self, toolbox):
        assert toolbox.run_libc_binary("/nope") is None

    def test_libc_version_via_api(self, toolbox):
        assert toolbox.libc_version_via_api("/lib64/libc.so.6") == "2.5"


class TestWrapperInspection:
    def test_wrapper_compiler(self, site, toolbox):
        stack = site.find_stack("openmpi-1.4-intel")
        driver = toolbox.wrapper_compiler(stack.wrapper_path("mpicc"))
        assert driver == "/opt/intel-11.1/bin/icc"

    def test_wrapper_compiler_on_elf_returns_none(self, site, toolbox):
        stack = site.find_stack("openmpi-1.4-intel")
        assert toolbox.wrapper_compiler(stack.mpiexec_path) is None

    def test_compiler_banner(self, toolbox):
        banner = toolbox.compiler_banner("/opt/intel-11.1/bin/icc")
        assert banner is not None and "11.1" in banner
