"""Symbol-level diagnostics (the ldd -r layer)."""

import pytest

from repro.elf import BinarySpec, write_elf
from repro.elf.constants import ElfType
from repro.elf.structs import DynamicSymbol
from repro.sysmodel.distro import CENTOS_5_6
from repro.sysmodel.loader import undefined_symbols
from repro.sysmodel.machine import Machine
from repro.toolchain.compilers import Language


@pytest.fixture
def machine():
    m = Machine("symhost", "x86_64", CENTOS_5_6)
    m.fs.write("/lib64/libc.so.6", write_elf(BinarySpec(
        etype=ElfType.DYN, soname="libc.so.6",
        version_definitions=("libc.so.6", "GLIBC_2.0", "GLIBC_2.5"),
        symbols=(DynamicSymbol("printf", True, "GLIBC_2.0"),
                 DynamicSymbol("malloc", True, "GLIBC_2.0")))),
        mode=0o755)
    m.fs.write("/usr/lib64/libwidget.so.1", write_elf(BinarySpec(
        etype=ElfType.DYN, soname="libwidget.so.1",
        needed=("libc.so.6",),
        symbols=(DynamicSymbol("widget_new", True),
                 DynamicSymbol("widget_free", True)))), mode=0o755)
    return m


def _resolve(machine, **spec_kwargs):
    binary = write_elf(BinarySpec(**spec_kwargs))
    return machine.loader.resolve(binary, machine.env)


def test_all_imports_satisfied(machine):
    report = _resolve(
        machine, needed=("libwidget.so.1", "libc.so.6"),
        version_requirements={"libc.so.6": ("GLIBC_2.0",)},
        symbols=(DynamicSymbol("main", True),
                 DynamicSymbol("widget_new", False),
                 DynamicSymbol("printf", False, "GLIBC_2.0")))
    assert undefined_symbols(report) == []


def test_missing_symbol_detected(machine):
    report = _resolve(
        machine, needed=("libwidget.so.1", "libc.so.6"),
        symbols=(DynamicSymbol("widget_resize", False),))
    missing = undefined_symbols(report)
    assert [s.name for s in missing] == ["widget_resize"]


def test_versioned_import_needs_matching_version(machine):
    # libc only exports printf@GLIBC_2.0; a GLIBC_2.5-versioned import of
    # a symbol it never exported is unsatisfied.
    report = _resolve(
        machine, needed=("libc.so.6",),
        version_requirements={"libc.so.6": ("GLIBC_2.5",)},
        symbols=(DynamicSymbol("posix_fadvise64", False, "GLIBC_2.5"),))
    missing = undefined_symbols(report)
    assert [s.name for s in missing] == ["posix_fadvise64"]


def test_versioned_import_satisfied_by_unversioned_export(machine):
    machine.fs.write("/usr/lib64/libold.so.1", write_elf(BinarySpec(
        etype=ElfType.DYN, soname="libold.so.1",
        symbols=(DynamicSymbol("legacy_fn", True),))), mode=0o755)
    report = _resolve(
        machine, needed=("libold.so.1", "libc.so.6"),
        version_requirements={"libc.so.6": ("GLIBC_2.0",)},
        symbols=(DynamicSymbol("legacy_fn", False, "GLIBC_2.0"),))
    # Old-style unversioned libraries satisfy versioned references.
    assert undefined_symbols(report) == []


def test_corpus_binaries_have_no_undefined_symbols(mini_site):
    """Soundness: every symbol a simulated application imports is
    exported by the libraries the toolchain links it against."""
    for slug in ("openmpi-1.4-gnu", "openmpi-1.4-intel"):
        stack = mini_site.find_stack(slug)
        for language in (Language.C, Language.FORTRAN, Language.CXX):
            app = mini_site.compile_mpi_program(
                f"sym-{slug}-{language.value}", language, stack)
            env = mini_site.env_with_stack(stack)
            report = mini_site.machine.loader.resolve(app.image, env)
            assert report.ok
            assert undefined_symbols(report) == [], (slug, language)


def test_compat_resolved_fortran_has_no_undefined_symbols(
        paper_sites_by_name):
    """A g77 binary resolved through forge's compat-libf2c exports the
    right symbols (s_wsfe and friends)."""
    ranger = paper_sites_by_name["ranger"]
    forge = paper_sites_by_name["forge"]
    stack = ranger.find_stack("openmpi-1.3-gnu")
    app = ranger.compile_mpi_program("g77app", Language.FORTRAN, stack)
    target_stack = forge.find_stack("openmpi-1.4-gnu")
    env = forge.env_with_stack(target_stack)
    report = forge.machine.loader.resolve(app.image, env)
    assert report.ok
    assert undefined_symbols(report) == []


def test_toolbox_ldd_r(mini_site):
    stack = mini_site.find_stack("openmpi-1.4-gnu")
    app = mini_site.compile_mpi_program("lddr-app", Language.C, stack)
    mini_site.machine.fs.write("/home/user/lddr-app", app.image, mode=0o755)
    toolbox = mini_site.toolbox()
    result, missing = toolbox.ldd_r(
        "/home/user/lddr-app", mini_site.env_with_stack(stack))
    assert result.recognised and result.missing == ()
    assert missing == []
