"""Property-based tests: writer/reader round-trip over arbitrary specs."""

import string

from hypothesis import given, settings, strategies as st

from repro.elf import (
    BinarySpec,
    ElfClass,
    ElfData,
    ElfMachine,
    ElfType,
    describe_elf,
    parse_elf,
    write_elf,
)
from repro.elf.constants import elf_hash

_name_alphabet = string.ascii_lowercase + string.digits + "_-+"


def sonames():
    return st.builds(
        lambda stem, major: f"lib{stem}.so.{major}",
        st.text(_name_alphabet, min_size=1, max_size=12),
        st.integers(min_value=0, max_value=99))


def version_names():
    return st.builds(
        lambda ns, a, b: f"{ns}_{a}.{b}",
        st.sampled_from(["GLIBC", "GCC", "GFORTRAN", "GLIBCXX", "OMPI"]),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=20))


def specs():
    return st.builds(
        BinarySpec,
        machine=st.sampled_from([ElfMachine.X86_64, ElfMachine.X86,
                                 ElfMachine.PPC64, ElfMachine.IA_64]),
        elf_class=st.sampled_from([ElfClass.ELF32, ElfClass.ELF64]),
        data=st.sampled_from([ElfData.LSB, ElfData.MSB]),
        etype=st.sampled_from([ElfType.EXEC, ElfType.DYN]),
        needed=st.lists(sonames(), max_size=8, unique=True).map(tuple),
        soname=st.one_of(st.none(), sonames()),
        rpath=st.one_of(st.none(), st.just("/opt/x/lib")),
        version_requirements=st.dictionaries(
            sonames(),
            st.lists(version_names(), min_size=1, max_size=4,
                     unique=True).map(tuple),
            max_size=4),
        version_definitions=st.lists(
            version_names(), max_size=5, unique=True).map(tuple),
        comment=st.lists(
            st.text(string.printable.strip(), min_size=1, max_size=40),
            max_size=3, unique=True).map(tuple),
        payload_size=st.integers(min_value=0, max_value=5000),
    )


_symbol_names = st.text(_name_alphabet, min_size=1, max_size=12)


@st.composite
def specs_with_symbols(draw):
    """Specs whose symbols reference only declared versions."""
    import dataclasses

    from repro.elf.structs import DynamicSymbol

    spec = draw(specs())
    available_versions = [None]
    # The first version definition is the BASE (versym index 1 = global),
    # so symbols referencing it -- by any route, including a same-named
    # verneed entry -- read back as unversioned, per real ELF semantics.
    # Only names distinct from the base are usable symbol versions.
    base = spec.version_definitions[0] if spec.version_definitions else None
    available_versions += [v for v in spec.version_definitions[1:]
                           if v != base]
    for versions in spec.version_requirements.values():
        available_versions += [v for v in versions if v != base]
    names = draw(st.lists(_symbol_names, max_size=6, unique=True))
    symbols = tuple(
        DynamicSymbol(
            name=name,
            defined=draw(st.booleans()),
            version=draw(st.sampled_from(available_versions)))
        for name in names)
    return dataclasses.replace(spec, symbols=symbols)


@settings(max_examples=80, deadline=None)
@given(specs_with_symbols())
def test_symbols_roundtrip(spec: BinarySpec):
    elf = parse_elf(write_elf(spec))
    assert elf.symbols == spec.symbols
    assert len(elf.exported_symbols) == sum(
        1 for s in spec.symbols if s.defined)


@settings(max_examples=120, deadline=None)
@given(specs())
def test_roundtrip_structure(spec: BinarySpec):
    info = describe_elf(write_elf(spec))
    assert info.machine is spec.machine
    assert info.bits == spec.elf_class.bits
    assert info.endianness is spec.data
    assert info.etype is spec.etype
    assert info.needed == spec.needed
    assert info.soname == spec.soname
    assert info.rpath == spec.rpath
    refs = {}
    for filename, version in (
            (req.filename, v.name)
            for req in info.version_requirements for v in req.versions):
        refs.setdefault(filename, []).append(version)
    expected = {f: list(vs) for f, vs in spec.version_requirements.items()
                if vs}
    assert refs == expected
    assert info.version_definitions == spec.version_definitions
    # Comments are deduplicated and stripped, never invented.
    assert set(info.comment) <= {c.strip() for c in spec.comment}


@settings(max_examples=60, deadline=None)
@given(specs())
def test_write_is_deterministic(spec: BinarySpec):
    assert write_elf(spec) == write_elf(spec)


@settings(max_examples=60, deadline=None)
@given(specs())
def test_no_parse_crash_on_any_spec(spec: BinarySpec):
    elf = parse_elf(write_elf(spec))
    assert elf.header.shnum == len(elf.sections)


@settings(max_examples=200, deadline=None)
@given(st.text(string.printable, max_size=64))
def test_elf_hash_is_32bit_and_stable(name: str):
    h = elf_hash(name)
    assert 0 <= h <= 0xFFFFFFFF
    assert h == elf_hash(name)


def test_elf_hash_known_values():
    # Known SysV hash values used by real glibc version tables.
    assert elf_hash("GLIBC_2.5") == 0x0D696915
    assert elf_hash("") == 0
