"""ldconfig / ld.so.cache emulation tests."""

import pytest

from repro.sysmodel.ldconfig import (
    CACHE_PATH,
    read_cache,
    render_ldconfig_p,
    run_ldconfig,
    scan_trusted_directories,
)
from repro.tools.toolbox import Toolbox, ToolUnavailable


def test_site_build_runs_ldconfig(mini_site):
    assert mini_site.machine.fs.is_file(CACHE_PATH)
    entries = read_cache(mini_site.machine.fs)
    assert entries is not None
    sonames = {e.soname for e in entries}
    assert "libc.so.6" in sonames
    assert "libgfortran.so.1" in sonames
    assert "libz.so.1" in sonames


def test_cache_indexes_only_trusted_dirs(mini_site):
    entries = read_cache(mini_site.machine.fs)
    sonames = {e.soname for e in entries}
    # /opt libraries (Intel, MPI stacks) are NOT in the cache.
    assert "libimf.so" not in sonames
    assert "libmpi.so.0" not in sonames
    assert all(e.path.startswith(("/lib", "/usr/lib")) for e in entries)


def test_cache_entries_carry_arch(mini_site):
    entries = read_cache(mini_site.machine.fs)
    libc = next(e for e in entries if e.soname == "libc.so.6")
    assert libc.arch == "x86-64"
    assert libc.bits == 64
    assert libc.path == "/lib64/libc-2.5.so"  # realpath through symlink


def test_rerun_after_install(mini_site):
    from repro.toolchain.products import LibraryProduct
    before = len(read_cache(mini_site.machine.fs))
    LibraryProduct("libnew.so.1", size=1000).install(
        mini_site.machine.fs, "/usr/lib64", mini_site.libc)
    count = run_ldconfig(mini_site.machine)
    assert count == before + 1
    sonames = {e.soname for e in read_cache(mini_site.machine.fs)}
    assert "libnew.so.1" in sonames


def test_scan_skips_non_elf_files(mini_site):
    mini_site.machine.fs.write_text("/usr/lib64/libfake.so.9", "not elf")
    entries = scan_trusted_directories(mini_site.machine)
    assert not any(e.soname == "libfake.so.9" for e in entries)


def test_read_cache_absent_and_corrupt(mini_site):
    fs = mini_site.machine.fs
    fs.write_text(CACHE_PATH, "garbage header\nmore garbage")
    assert read_cache(fs) is None
    fs.remove(CACHE_PATH)
    assert read_cache(fs) is None


def test_render_ldconfig_p(mini_site):
    run_ldconfig(mini_site.machine)
    text = render_ldconfig_p(read_cache(mini_site.machine.fs))
    assert "libs found in cache" in text
    assert "libc.so.6 (libc6,x86-64) =>" in text


class TestToolboxIntegration:
    def test_ldconfig_p(self, mini_site):
        toolbox = Toolbox(mini_site.machine)
        entries = toolbox.ldconfig_p()
        assert entries and any(e.soname == "libm.so.6" for e in entries)

    def test_cache_lookup(self, mini_site):
        toolbox = Toolbox(mini_site.machine)
        assert toolbox.cache_lookup("libc.so.6") == "/lib64/libc-2.5.so"
        assert toolbox.cache_lookup("libnothing.so.1") is None

    def test_unavailable(self, mini_site):
        toolbox = Toolbox(mini_site.machine,
                          Toolbox.ALL_TOOLS - frozenset({"ldconfig"}))
        with pytest.raises(ToolUnavailable):
            toolbox.ldconfig_p()
        assert toolbox.cache_lookup("libc.so.6") is None  # degrades quietly

    def test_edc_uses_cache_for_libc(self, mini_site):
        from repro.core.discovery import EnvironmentDiscoveryComponent
        edc = EnvironmentDiscoveryComponent(mini_site.toolbox())
        env = edc.discover()
        assert env.libc_version == "2.5"
        assert env.libc_path == "/lib64/libc-2.5.so"
