"""Submission scripts: rendering, parsing and file-based submission."""

import pytest

from repro.sites.scheduler import Scheduler, SchedulerFlavor
from repro.sysmodel.errors import ExecutionResult


def _ok(seconds=5.0):
    return lambda: ExecutionResult.success(elapsed_seconds=seconds)


@pytest.fixture(params=list(SchedulerFlavor))
def scheduler(request):
    return Scheduler(request.param, "scriptsite", seed=3)


def test_template_roundtrip_parallel(scheduler):
    script = scheduler.parallel_template().format(
        name="wave", queue="normal", nodes=2, ppn=8, nprocs=16,
        walltime="01:00:00", mpiexec="mpiexec", command="./wave.x")
    fields = scheduler.parse_directives(script)
    assert fields["name"] == "wave"
    assert fields["queue"] == "normal"
    assert fields["nprocs"] == 16
    assert "./wave.x" in fields["command"]


def test_template_roundtrip_serial(scheduler):
    script = scheduler.serial_template().format(
        name="probe", queue="debug", walltime="00:05:00",
        command="./feam-target-phase")
    fields = scheduler.parse_directives(script)
    assert fields["name"] == "probe"
    assert fields["queue"] == "debug"
    assert fields["nprocs"] == 1
    assert fields["command"] == "./feam-target-phase"


def test_submit_script_uses_directives(scheduler):
    script = scheduler.parallel_template().format(
        name="biggish", queue="normal", nodes=1, ppn=4, nprocs=4,
        walltime="01:00:00", mpiexec="mpiexec", command="./app")
    record = scheduler.submit_script(script, _ok(3600.0))
    assert record.name == "biggish"
    assert record.queue == "normal"
    assert record.nprocs == 4
    assert record.cpu_hours == pytest.approx(4.0)


def test_submit_script_unknown_queue_raises(scheduler):
    script = scheduler.serial_template().format(
        name="x", queue="imaginary", walltime="0", command="./x")
    with pytest.raises(KeyError):
        scheduler.submit_script(script, _ok())


def test_parse_ignores_comments_and_blanks():
    scheduler = Scheduler(SchedulerFlavor.PBS, "s", 1)
    fields = scheduler.parse_directives(
        "#!/bin/sh\n\n# a plain comment\n#PBS -N named\n./run\n")
    assert fields["name"] == "named"
    assert fields["command"] == "./run"


def test_pbs_nodes_ppn_multiplied():
    scheduler = Scheduler(SchedulerFlavor.PBS, "s", 1)
    fields = scheduler.parse_directives(
        "#PBS -l nodes=4:ppn=8\nmpiexec ./app\n")
    assert fields["nprocs"] == 32
