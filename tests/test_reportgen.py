"""Markdown report generation over a reduced experiment."""

import pytest

from repro.corpus.benchmarks import Suite
from repro.corpus.builder import CorpusConfig
from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.evaluation.reportgen import render_markdown_report


@pytest.fixture(scope="module")
def report_text():
    result = run_experiment(ExperimentConfig(
        seed=31337,
        corpus=CorpusConfig(seed=31337, target_counts={
            Suite.NPB: 15, Suite.SPEC: 15})))
    return render_markdown_report(result)


def test_headline_sections_present(report_text):
    for heading in ("# FEAM reproduction",
                    "## Prediction accuracy",
                    "## Resolution impact",
                    "## Failure causes before resolution",
                    "## Operational measurements",
                    "## Determinant ablation",
                    "## Migration matrix"):
        assert heading in report_text


def test_paper_values_included(report_text):
    # The published Table III/IV values appear for comparison.
    assert "94%" in report_text
    assert "99%" in report_text


def test_matrix_covers_all_sites(report_text):
    for name in ("ranger", "forge", "blacklight", "india", "fir"):
        assert name in report_text


def test_is_valid_markdown_table_structure(report_text):
    for line in report_text.splitlines():
        if line.startswith("|"):
            assert line.rstrip().endswith("|"), line


def test_mentions_test_set_size(report_text):
    assert "15 NPB" in report_text
    assert "15 SPEC MPI2007" in report_text


def test_records_to_csv(report_text):
    # Reuse the module fixture's experiment via a fresh reduced run.
    from repro.evaluation.reportgen import records_to_csv
    result = run_experiment(ExperimentConfig(
        seed=31337,
        corpus=CorpusConfig(seed=31337, target_counts={
            Suite.NPB: 15, Suite.SPEC: 15})))
    csv_text = records_to_csv(result)
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("binary_id,suite,benchmark")
    assert len(lines) == len(result.records) + 1
    import csv as csv_module
    import io
    rows = list(csv_module.reader(io.StringIO(csv_text)))
    assert all(len(row) == len(rows[0]) for row in rows)
