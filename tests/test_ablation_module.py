"""Determinant-ablation computation over synthetic records."""

from repro.core.prediction import Determinant
from repro.corpus.benchmarks import Suite
from repro.evaluation.ablation import (
    _predict_with,
    determinant_ablation,
    render_determinant_ablation,
)
from repro.evaluation.experiment import MigrationRecord


def record(determinants, before=True):
    return MigrationRecord(
        binary_id="b", suite=Suite.NPB, benchmark="nas.bt",
        build_site="a", build_stack="s", target_site="t",
        naive_stack="s", basic_ready=True, extended_ready=True,
        actual_before_ok=before, actual_before_failure=None,
        actual_after_ok=before, actual_after_failure=None,
        feam_stack="s", basic_determinants=determinants,
        extended_determinants=determinants)


def test_predict_with_subsets():
    determinants = {"isa-compatibility": True,
                    "c-library-compatibility": False,
                    "mpi-stack-compatibility": None}
    assert _predict_with(determinants, [Determinant.ISA])
    assert not _predict_with(determinants, [Determinant.C_LIBRARY])
    # Unevaluated (None) and absent determinants count as passing.
    assert _predict_with(determinants, [Determinant.MPI_STACK])
    assert _predict_with(determinants, [Determinant.SHARED_LIBRARIES])
    assert not _predict_with(determinants, list(Determinant))
    assert _predict_with(determinants, [])


def test_ablation_rows_structure():
    records = [record({"c-library-compatibility": False}, before=False),
               record({"c-library-compatibility": True}, before=True)]
    rows = determinant_ablation(records, mode="basic")
    assert len(rows) == 10  # full + 4 leave-one-out + 4 singles + none
    by_subset = {row.enabled: row for row in rows}
    # The C-library determinant alone predicts both records perfectly.
    assert by_subset[(Determinant.C_LIBRARY.value,)].accuracy == 1.0
    # The empty model predicts everything ready: 50% here.
    assert by_subset[()].accuracy == 0.5


def test_leave_one_out_drops_when_informative():
    records = [record({"shared-library-compatibility": False},
                      before=False)] * 3 + \
              [record({"shared-library-compatibility": True},
                      before=True)] * 3
    rows = determinant_ablation(records, mode="basic")
    by_subset = {row.enabled: row for row in rows}
    full = tuple(d.value for d in Determinant)
    without_shared = tuple(d.value for d in Determinant
                           if d is not Determinant.SHARED_LIBRARIES)
    assert by_subset[full].accuracy == 1.0
    assert by_subset[without_shared].accuracy == 0.5


def test_render():
    rows = determinant_ablation([record({}, before=True)], mode="basic")
    text = render_determinant_ablation(rows)
    assert "DETERMINANT ABLATION" in text
    assert "(none: always ready)" in text
    assert "100.0%" in text
