"""Histogram edge cases and the registry views the serving layer reads.

The quantile estimator is bucket-resolution by design; these tests pin
the *edges*: empty histograms answer None, a single sample answers
that sample (not a bucket bound the data never reached), values past
the last bucket edge report the true max, and the cumulative
``bucket_counts`` view always sums to ``count`` (what the Prometheus
exposition renders).
"""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestHistogramEdgeCases:
    def test_empty_histogram_quantiles_are_none(self):
        h = Histogram("h")
        assert h.quantile(0.5) is None
        assert h.quantile(0.95) is None
        assert h.mean is None
        summary = h.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None
        assert summary["p95"] is None
        assert summary["min"] is None and summary["max"] is None

    def test_single_sample_reports_the_sample(self):
        # 0.003 lands in the (0.002, 0.005] bucket; the naive estimate
        # would be the 0.005 upper bound -- an edge never observed.
        h = Histogram("h")
        h.observe(0.003)
        assert h.quantile(0.50) == pytest.approx(0.003)
        assert h.quantile(0.95) == pytest.approx(0.003)
        assert h.quantile(0.0) == pytest.approx(0.003)
        assert h.quantile(1.0) == pytest.approx(0.003)

    def test_values_beyond_last_bucket_edge_report_true_max(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5000.0)
        assert h.quantile(0.95) == pytest.approx(5000.0)
        assert h.summary()["max"] == pytest.approx(5000.0)

    def test_all_samples_in_overflow_bucket(self):
        h = Histogram("h", buckets=(1.0,))
        for value in (10.0, 20.0, 30.0):
            h.observe(value)
        assert h.quantile(0.5) == pytest.approx(30.0)  # bucket max
        assert h.quantile(0.95) == pytest.approx(30.0)

    def test_quantile_q_is_clamped(self):
        h = Histogram("h")
        h.observe(0.5)
        assert h.quantile(-3.0) == pytest.approx(0.5)
        assert h.quantile(7.0) == pytest.approx(0.5)

    def test_estimate_clamped_into_min_max(self):
        # Two samples in one coarse bucket: estimates stay inside the
        # observed [min, max] band.
        h = Histogram("h", buckets=(100.0,))
        h.observe(10.0)
        h.observe(20.0)
        assert 10.0 <= h.quantile(0.50) <= 20.0
        assert 10.0 <= h.quantile(0.95) <= 20.0

    def test_p50_below_p95_on_spread_data(self):
        h = Histogram("h")
        for _ in range(95):
            h.observe(0.001)
        for _ in range(5):
            h.observe(10.0)
        assert h.quantile(0.50) == pytest.approx(0.001)
        assert h.quantile(0.95) <= h.quantile(0.999)


class TestBucketCounts:
    def test_cumulative_and_terminal_count(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 3.0, 100.0):
            h.observe(value)
        pairs = h.bucket_counts()
        bounds = [bound for bound, _ in pairs]
        counts = [count for _, count in pairs]
        assert bounds == [1.0, 2.0, 5.0, None]
        assert counts == [1, 3, 4, 5]
        assert counts == sorted(counts)  # cumulative => monotone
        assert counts[-1] == h.count

    def test_empty_histogram_has_zero_rows(self):
        pairs = Histogram("h", buckets=(1.0,)).bucket_counts()
        assert pairs == [(1.0, 0), (None, 0)]


class TestRegistryViews:
    def test_instruments_returns_live_objects(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(2)
        registry.gauge("c.d").set(1.5)
        registry.histogram("e.f").observe(0.1)
        counters, gauges, histograms = registry.instruments()
        assert counters["a.b"].value == 2
        assert gauges["c.d"].value == 1.5
        assert histograms["e.f"].count == 1
        # The maps are copies: mutating them does not affect the
        # registry, but the instruments are shared.
        counters.clear()
        assert registry.counter("a.b").value == 2
