"""Discovery fallback chains: the paper's "information is gathered in
multiple ways ... in case some tools are not present or functioning"."""

import pytest

from repro.core import Feam, FeamConfig
from repro.core.discovery import EnvironmentDiscoveryComponent
from repro.mpi.stack import MpiStackInstall, MpiStackSpec, Interconnect
from repro.mpi.implementations import mpich2, open_mpi
from repro.toolchain.compilers import CompilerFamily, Language
from repro.tools.toolbox import Toolbox


class TestNonStandardPrefixDiscovery:
    """A stack installed at a path that reveals nothing about it."""

    @pytest.fixture
    def site(self, make_site):
        site = make_site("oddsite", module_system="none")
        # Install an extra MPICH2 stack at a non-conventional prefix.
        compiler = site.compiler_installs[
            str(site.spec.compiler_for(CompilerFamily.GNU))]
        spec = MpiStackSpec(mpich2("1.4"), compiler.compiler,
                            Interconnect.INFINIBAND)
        install = MpiStackInstall(spec=spec, compiler_install=compiler,
                                  prefix="/opt/parallel")
        machine_kind, elf_class, data = site._elf_target
        install.install(site.machine, site.libc,
                        machine_kind, elf_class, data)
        site.stacks.append(install)
        return site

    def test_identified_from_library_dependencies(self, site):
        """Table I's dependency-based identification kicks in when the
        path name says nothing."""
        edc = EnvironmentDiscoveryComponent(site.toolbox())
        env = edc.discover()
        odd = next((s for s in env.stacks if s.prefix == "/opt/parallel"),
                   None)
        assert odd is not None
        assert odd.kind == "MPICH2"
        assert odd.via == "path-search"
        # Name-derived fields are unknown; the compiler still comes from
        # the wrapper script.
        assert odd.version is None
        assert odd.compiler_version is not None

    def test_feam_can_use_the_odd_stack(self, site, make_site):
        from repro.sites.site import StackRequest
        donor = make_site("odd-donor", stacks=(
            StackRequest(mpich2("1.4"), CompilerFamily.GNU),))
        stack = donor.find_stack("mpich2-1.4-gnu")
        app = donor.compile_mpi_program("oddapp", Language.C, stack)
        site.machine.fs.write("/home/user/oddapp", app.image, mode=0o755)
        report = Feam().run_target_phase(
            site, binary_path="/home/user/oddapp", staging_tag="odd")
        assert report.ready
        assert report.selected_stack_prefix == "/opt/parallel"


class TestToolFallbackChains:
    def test_target_phase_without_objdump(self, make_site, monkeypatch):
        """The BDC falls back to ldd when objdump is absent; the whole
        target phase still reaches a correct verdict."""
        donor = make_site("fb-donor")
        target = make_site("fb-target", missing_tools=("objdump",))
        stack = donor.find_stack("openmpi-1.4-gnu")
        app = donor.compile_mpi_program("fbapp", Language.C, stack)
        target.machine.fs.write("/home/user/fbapp", app.image, mode=0o755)
        report = Feam().run_target_phase(
            target, binary_path="/home/user/fbapp", staging_tag="fb")
        assert report.ready

    def test_search_without_locate_or_find(self, make_site):
        toolbox = Toolbox(
            make_site("fb2").machine,
            Toolbox.ALL_TOOLS - frozenset({"locate", "find"}))
        from repro.tools.toolbox import ToolUnavailable
        with pytest.raises(ToolUnavailable):
            toolbox.search_library("libimf.so")
        # loader-visible checks don't need either tool.
        assert toolbox.loader_visible_library("libz.so.1") is not None

    def test_discovery_without_uname(self, make_site):
        site = make_site("fb3", missing_tools=("uname",))
        env = EnvironmentDiscoveryComponent(site.toolbox()).discover()
        assert env.isa == "x86_64"  # machine-report fallback

    def test_source_phase_where_ldd_lies(self, make_site):
        """PGI binaries defeat ldd (Section V.A); the BDC's search-based
        locating still assembles a complete bundle."""
        from repro.mpi.implementations import open_mpi as _open_mpi
        from repro.sites.site import StackRequest
        from repro.toolchain.compilers import pgi
        donor = make_site(
            "pgi-donor", vendor_compilers=(pgi("10.3"),),
            stacks=(StackRequest(_open_mpi("1.4"), CompilerFamily.PGI),))
        stack = donor.find_stack("openmpi-1.4-pgi")
        app = donor.compile_mpi_program("pgiapp", Language.FORTRAN, stack)
        donor.machine.fs.write("/home/user/pgiapp", app.image, mode=0o755)
        bundle = Feam().run_source_phase(
            donor, "/home/user/pgiapp", env=donor.env_with_stack(stack))
        assert bundle.description.gathered_via == "objdump"
        assert bundle.library("libpgf90.so") is not None
        assert bundle.library("libpgf90.so").copied
