"""The observability core: tracer, metrics, events, null fast path."""

import threading
import time

import pytest

from repro import obs
from repro.core.engine import CacheStats
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_SPAN, Tracer


class TestTracer:
    def test_spans_nest_through_thread_local_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        inner, outer = tracer.spans  # finish order: children first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_records_attrs_and_durations(self):
        tracer = Tracer()
        with tracer.span("op", site="fir") as sp:
            sp.set_attrs(ready=True)
            sp.add_sim_seconds(12.5)
            sp.add_sim_seconds(0.5)
        (span,) = tracer.spans
        assert span.attrs == {"site": "fir", "ready": True}
        assert span.sim_seconds == 13.0
        assert span.wall_seconds is not None and span.wall_seconds >= 0
        assert span.status == "ok"

    def test_exception_marks_span_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert "boom" in span.attrs["error"]
        assert tracer.current_span() is None  # stack unwound

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("planner") as planner:
            def worker():
                with tracer.span("site-work", parent=planner):
                    with tracer.span("cell"):
                        pass
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        cell = tracer.spans_named("cell")[0]
        site_work = tracer.spans_named("site-work")[0]
        assert site_work.parent_id == planner.span_id
        # Implicit nesting still works inside the worker thread.
        assert cell.parent_id == site_work.span_id
        assert site_work.thread != planner.thread

    def test_span_ids_are_unique_under_concurrency(self):
        tracer = Tracer()

        def burst():
            for _ in range(50):
                with tracer.span("burst"):
                    pass

        threads = [threading.Thread(target=burst) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == 200
        assert len(set(ids)) == 200


class TestMetrics:
    def test_counter_gauge(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("util").set(0.75)
        assert registry.counter("hits").value == 3
        assert registry.gauge("util").value == 0.75

    def test_histogram_summary_quantiles(self):
        hist = Histogram("lat", DEFAULT_BUCKETS)
        for value in [0.001] * 90 + [0.4] * 10:
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.4)
        # Bucket estimates: p50 in the lowest bucket, p95 near the top.
        assert summary["p50"] <= 0.002
        assert 0.1 <= summary["p95"] <= 0.5

    def test_absorb_cache_stats(self):
        registry = MetricsRegistry()
        stats = CacheStats(description_hits=7, description_misses=2,
                           discovery_hits=4, discovery_misses=1,
                           evaluation_hits=9, evaluation_misses=3)
        registry.absorb_cache_stats(stats)
        assert registry.counter("engine.cache.description.hits").value == 7
        assert registry.counter("engine.cache.evaluation.misses").value == 3

    def test_render_lists_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc()
        registry.gauge("b.level").set(2.0)
        registry.histogram("c.seconds").observe(0.01)
        rendered = registry.render()
        for name in ("a.count", "b.level", "c.seconds"):
            assert name in rendered


class TestEvents:
    def test_events_keep_emit_order(self):
        with obs.capture() as collector:
            obs.event("first", k=1)
            obs.event("second", k=2)
        first, second = collector.events.events
        assert (first.name, second.name) == ("first", "second")
        assert first.seq < second.seq
        assert first.attrs == {"k": 1}


class TestFacadeAndCapture:
    def test_default_is_null_collector(self):
        assert not obs.is_active()
        span = obs.span("anything", site="x")
        assert span is NULL_SPAN
        with span as sp:
            sp.set_attrs(more=1)  # absorbed, never raises
        obs.counter("nope").inc()
        obs.event("nope")
        assert obs.current().spans == ()

    def test_capture_installs_and_restores(self):
        assert not obs.is_active()
        with obs.capture() as collector:
            assert obs.is_active()
            assert obs.current() is collector
            with obs.span("traced"):
                pass
        assert not obs.is_active()
        assert [s.name for s in collector.spans] == ["traced"]

    def test_capture_nests(self):
        with obs.capture() as outer:
            with obs.capture() as inner:
                obs.counter("k").inc()
            assert obs.current() is outer
        assert inner.metrics.counter("k").value == 1
        assert outer.metrics.counter("k").value == 0

    def test_capture_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("bail")
        assert not obs.is_active()


class TestNoOpOverhead:
    """The acceptance gate: uninstrumented-feeling when no collector is on.

    The facade with no collector installed must cost well under a
    handful of microseconds per span -- generous enough for CI noise,
    tight enough that an accidental allocation-per-span or lock on the
    null path fails loudly.
    """

    BUDGET_SECONDS_PER_SPAN = 20e-6

    def test_null_span_cost_is_bounded(self):
        assert not obs.is_active()
        iterations = 20_000
        # Warm up (imports, attribute caches).
        for _ in range(1000):
            with obs.span("warm", site="s"):
                pass
        best = float("inf")
        for _ in range(3):  # best-of-3 shields against scheduler blips
            start = time.perf_counter()
            for _ in range(iterations):
                with obs.span("noop", site="s", binary="b"):
                    pass
            best = min(best, time.perf_counter() - start)
        per_span = best / iterations
        assert per_span < self.BUDGET_SECONDS_PER_SPAN, (
            f"null span costs {per_span * 1e6:.2f}us, budget "
            f"{self.BUDGET_SECONDS_PER_SPAN * 1e6:.0f}us")

    def test_null_metrics_and_events_cost_is_bounded(self):
        assert not obs.is_active()
        iterations = 20_000
        start = time.perf_counter()
        for _ in range(iterations):
            obs.counter("noop").inc()
            obs.event("noop", k=1)
        per_call = (time.perf_counter() - start) / (2 * iterations)
        assert per_call < self.BUDGET_SECONDS_PER_SPAN
