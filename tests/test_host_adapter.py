"""Host adapter: FEAM's analysis over the real machine.

Runs only on Linux hosts with real ELF binaries; validates the loader
model against the system's real ``ldd``.
"""

import os
import platform
import shutil
import subprocess

import pytest

from repro.elf.reader import is_elf
from repro.host import HostFilesystem, host_machine, host_toolbox
from repro.sysmodel.fs import FsError


def _find_real_binary():
    for candidate in ("/bin/ls", "/usr/bin/env", "/bin/cat"):
        try:
            with open(candidate, "rb") as fh:
                head = fh.read(4)
        except OSError:
            continue
        if head == b"\x7fELF":
            return candidate
    return None


REAL = _find_real_binary()
needs_elf_host = pytest.mark.skipif(
    REAL is None or platform.system() != "Linux",
    reason="needs a Linux host with ELF binaries")


class TestHostFilesystem:
    def test_read_and_queries(self, tmp_path):
        fs = HostFilesystem()
        target = tmp_path / "file.txt"
        target.write_text("hello")
        assert fs.is_file(str(target))
        assert fs.read(str(target)) == b"hello"
        assert fs.size(str(target)) == 5
        assert fs.is_dir(str(tmp_path))
        assert "file.txt" in fs.listdir(str(tmp_path))

    def test_missing_file_raises_fs_error(self):
        fs = HostFilesystem()
        with pytest.raises(FsError):
            fs.read("/no/such/file/anywhere")

    def test_mutation_refused(self, tmp_path):
        fs = HostFilesystem()
        with pytest.raises(FsError):
            fs.write(str(tmp_path / "x"), b"data")
        with pytest.raises(FsError):
            fs.remove(str(tmp_path))
        with pytest.raises(FsError):
            fs.makedirs(str(tmp_path / "sub"))

    def test_walk_depth_capped(self, tmp_path):
        deep = tmp_path
        for i in range(12):
            deep = deep / f"d{i}"
        deep.mkdir(parents=True)
        (deep / "toodeep.txt").write_text("x")
        fs = HostFilesystem()
        hits = list(fs.find_files(str(tmp_path),
                                  lambda n: n == "toodeep.txt"))
        assert hits == []  # beyond MAX_WALK_DEPTH

    def test_symlink_resolution(self, tmp_path):
        fs = HostFilesystem()
        target = tmp_path / "real"
        target.write_bytes(b"x")
        link = tmp_path / "link"
        link.symlink_to(target)
        assert fs.is_symlink(str(link))
        assert fs.realpath(str(link)) == str(target)


@needs_elf_host
class TestHostMachine:
    def test_identity(self):
        machine = host_machine()
        assert machine.arch == platform.machine()
        assert machine.uname_processor() == machine.arch

    def test_read_elf_real_binary(self):
        machine = host_machine()
        elf = machine.read_elf(REAL)
        assert "libc.so.6" in elf.dynamic.needed
        # Cached on second read.
        assert machine.read_elf(REAL) is elf

    def test_loader_resolves_real_binary(self):
        machine = host_machine()
        with open(REAL, "rb") as fh:
            data = fh.read()
        report = machine.loader.resolve(data, machine.env, origin=REAL)
        assert report.ok, (report.missing_sonames, report.version_errors)

    @pytest.mark.skipif(shutil.which("ldd") is None, reason="no real ldd")
    def test_loader_agrees_with_real_ldd(self):
        machine = host_machine()
        with open(REAL, "rb") as fh:
            data = fh.read()
        report = machine.loader.resolve(data, machine.env, origin=REAL)
        out = subprocess.run(["ldd", REAL], capture_output=True,
                             text=True).stdout
        real_missing = {line.split("=>")[0].strip()
                        for line in out.splitlines() if "not found" in line}
        assert set(report.missing_sonames) == real_missing


@needs_elf_host
class TestHostToolboxAndBdc:
    def test_describe_real_binary(self):
        from repro.core.description import BinaryDescriptionComponent
        toolbox = host_toolbox()
        description = BinaryDescriptionComponent(toolbox).describe(REAL)
        assert description.is_dynamic
        assert "libc.so.6" in description.needed
        assert description.required_glibc is not None
        assert description.mpi_implementation is None

    def test_locate_disabled(self):
        from repro.tools.toolbox import ToolUnavailable
        toolbox = host_toolbox()
        with pytest.raises(ToolUnavailable):
            toolbox.locate("libc.so.6")

    def test_loader_visible_library_finds_libc(self):
        toolbox = host_toolbox()
        path = toolbox.loader_visible_library("libc.so.6")
        assert path is not None
        with open(os.path.realpath(path), "rb") as fh:
            assert is_elf(fh.read(4))

    def test_edc_discovers_host_libc(self):
        """The EDC's libc discovery works on the real machine (via the
        version-definitions fallback; real libc banners need execution)."""
        toolbox = host_toolbox()
        path = toolbox.loader_visible_library("libc.so.6")
        version = toolbox.libc_version_via_api(path)
        assert version is not None
        major = int(version.split(".")[0])
        assert major >= 2
