"""Machine aggregate tests: ISA support, loadability checks, ELF cache."""

import pytest

from repro.elf import BinarySpec, write_elf
from repro.elf.constants import ElfClass, ElfMachine, ElfType
from repro.sysmodel.distro import CENTOS_5_6, RHEL_6_1, SLES_11
from repro.sysmodel.errors import FailureKind
from repro.sysmodel.machine import Machine


@pytest.fixture
def machine():
    m = Machine("node1", "x86_64", CENTOS_5_6)
    m.fs.write("/lib64/libc.so.6", write_elf(BinarySpec(
        etype=ElfType.DYN, soname="libc.so.6",
        version_definitions=("libc.so.6", "GLIBC_2.0", "GLIBC_2.5"))),
        mode=0o755)
    return m


def test_unknown_arch_rejected():
    with pytest.raises(ValueError):
        Machine("x", "vax", CENTOS_5_6)


def test_isa_support_x86_64(machine):
    assert machine.supports_isa(ElfMachine.X86_64, ElfClass.ELF64)
    assert machine.supports_isa(ElfMachine.X86, ElfClass.ELF32)
    assert not machine.supports_isa(ElfMachine.PPC64, ElfClass.ELF64)
    assert not machine.supports_isa(ElfMachine.X86_64, ElfClass.ELF32)


def test_uname(machine):
    assert machine.uname_processor() == "x86_64"
    assert machine.uname_machine() == "x86_64"


def test_distro_files_materialised(machine):
    assert "Linux version 2.6.18-238.el5" in \
        machine.fs.read_text("/proc/version")
    assert "CentOS release 5.6" in machine.fs.read_text("/etc/redhat-release")


def test_distro_variants():
    rhel = Machine("r", "x86_64", RHEL_6_1)
    assert "Red Hat Enterprise Linux" in \
        rhel.fs.read_text("/etc/redhat-release")
    sles = Machine("s", "x86_64", SLES_11)
    assert "SUSE" in sles.fs.read_text("/etc/SuSE-release")


def test_check_loadable_success(machine):
    app = write_elf(BinarySpec(needed=("libc.so.6",)))
    failure, report = machine.check_loadable(app)
    assert failure is None
    assert report is not None and report.ok


def test_check_loadable_wrong_isa(machine):
    app = write_elf(BinarySpec(machine=ElfMachine.PPC64,
                               needed=("libc.so.6",)))
    failure, report = machine.check_loadable(app)
    assert failure is not None
    assert failure.failure.kind is FailureKind.EXEC_FORMAT
    assert report is None


def test_check_loadable_not_elf(machine):
    failure, _report = machine.check_loadable(b"#!/bin/sh\necho hi\n")
    assert failure is not None
    assert failure.failure.kind is FailureKind.EXEC_FORMAT


def test_check_loadable_missing_library(machine):
    app = write_elf(BinarySpec(needed=("libnope.so.1", "libc.so.6")))
    failure, report = machine.check_loadable(app)
    assert failure.failure.kind is FailureKind.MISSING_LIBRARY
    assert "libnope.so.1" in failure.failure.detail
    assert report is not None


def test_check_loadable_libc_version(machine):
    app = write_elf(BinarySpec(
        needed=("libc.so.6",),
        version_requirements={"libc.so.6": ("GLIBC_2.12",)}))
    failure, _ = machine.check_loadable(app)
    assert failure.failure.kind is FailureKind.LIBC_VERSION
    assert "GLIBC_2.12" in failure.failure.detail


def test_elf_cache_hits(machine):
    first = machine.read_elf("/lib64/libc.so.6")
    second = machine.read_elf("/lib64/libc.so.6")
    assert first is second
    assert first.data == b""  # detached


def test_elf_cache_invalidated_on_size_change(machine):
    machine.fs.write("/f.so", write_elf(BinarySpec(
        etype=ElfType.DYN, soname="liba.so.1", payload_size=100)),
        mode=0o755)
    a = machine.read_elf("/f.so")
    machine.fs.write("/f.so", write_elf(BinarySpec(
        etype=ElfType.DYN, soname="libb.so.1", payload_size=5000)),
        mode=0o755)
    b = machine.read_elf("/f.so")
    assert a is not b
    assert b.dynamic.soname == "libb.so.1"


def test_elf_cache_follows_symlinks(machine):
    machine.fs.write("/lib64/libx.so.1.0", write_elf(BinarySpec(
        etype=ElfType.DYN, soname="libx.so.1")), mode=0o755)
    machine.fs.symlink("/lib64/libx.so.1", "libx.so.1.0")
    via_link = machine.read_elf("/lib64/libx.so.1")
    direct = machine.read_elf("/lib64/libx.so.1.0")
    assert via_link is direct
