"""Source-phase edge cases."""

import pytest

from repro.core import Feam
from repro.core.bundlefile import pack_bundle, unpack_bundle
from repro.toolchain.compilers import Language


@pytest.fixture
def donor(make_site):
    return make_site("edge-donor")


def _install_app(site, stack_slug="openmpi-1.4-gnu", name="eapp"):
    stack = site.find_stack(stack_slug)
    app = site.compile_mpi_program(name, Language.C, stack)
    path = f"/home/user/{name}"
    site.machine.fs.write(path, app.image, mode=0o755)
    return stack, app, path


def test_source_phase_without_stack_env(donor):
    """Run with the bare login environment: no mpicc on PATH, so no
    hello probes -- the bundle still carries descriptions and copies
    (located by search, not ldd)."""
    _stack, _app, path = _install_app(donor)
    bundle = Feam().run_source_phase(donor, path)  # login env
    assert bundle.hello is None
    assert bundle.copied_count > 0
    assert bundle.library("libmpi.so.0").copied


def test_bundle_without_hello_roundtrips(donor):
    _stack, _app, path = _install_app(donor)
    bundle = Feam().run_source_phase(donor, path)
    restored = unpack_bundle(pack_bundle(bundle))
    assert restored.hello is None
    assert restored.copied_count == bundle.copied_count


def test_extended_phase_without_hello_probes(donor, make_site):
    """A bundle without hello programs still enables resolution; the
    extended compatibility tests are simply unavailable."""
    from repro.mpi.implementations import open_mpi
    from repro.sites.site import StackRequest
    from repro.toolchain.compilers import CompilerFamily
    stack, app, path = _install_app(donor, "openmpi-1.4-intel",
                                    name="eapp2")
    bundle = Feam().run_source_phase(donor, path)  # login env: no hello
    assert bundle.hello is None
    target = make_site(
        "edge-target", vendor_compilers=(),
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
    target.machine.fs.write("/home/user/eapp2", app.image, mode=0o755)
    report = Feam().run_target_phase(
        target, binary_path="/home/user/eapp2", bundle=bundle,
        staging_tag="nohello")
    # Intel runtime resolved from the bundle even without probes.
    assert report.ready
    assert report.resolution is not None and report.resolution.staged


def test_source_summary_lists_all_libraries(donor):
    stack, _app, path = _install_app(donor, name="eapp3")
    Feam().run_source_phase(donor, path, env=donor.env_with_stack(stack))
    summary = donor.machine.fs.read_text(
        "/home/user/feam/out/source-eapp3.txt")
    assert "libmpi.so.0: copied" in summary
    assert "libc.so.6: described" in summary
    assert "hello tests: c, fortran" in summary


def test_source_phase_missing_binary_raises(donor):
    from repro.sysmodel.fs import FsError
    with pytest.raises(FsError):
        Feam().run_source_phase(donor, "/home/user/does-not-exist")
