"""Resolution model tests (paper Section IV)."""

import pytest

from repro.core.bundle import SourceBundle
from repro.core.config import FeamConfig
from repro.core.description import BinaryDescriptionComponent
from repro.core.discovery import EnvironmentDiscoveryComponent
from repro.core.resolution import ResolutionModel
from repro.toolchain.compilers import Language


@pytest.fixture
def donor(make_site):
    """Guaranteed execution environment (has Intel runtimes)."""
    return make_site("donor")


@pytest.fixture
def target(make_site):
    """Target with no vendor compilers installed -- Intel libs missing."""
    from repro.mpi.implementations import open_mpi
    from repro.sites.site import StackRequest
    from repro.toolchain.compilers import CompilerFamily
    return make_site(
        "target", vendor_compilers=(),
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))


@pytest.fixture
def new_donor(make_site):
    """Guaranteed environment on a newer C library (glibc 2.12)."""
    return make_site("newdonor", libc_version="2.12",
                     system_gnu_version="4.4.5")


def _bundle_for(site, language=Language.FORTRAN, name="res-app",
                stack_slug=None):
    slugs = [s.spec.slug for s in site.stacks]
    stack = site.find_stack(stack_slug or
                            ("openmpi-1.4-intel" if
                             "openmpi-1.4-intel" in slugs else slugs[0]))
    app = site.compile_mpi_program(name, language, stack)
    path = f"/home/user/{name}"
    site.machine.fs.write(path, app.image, mode=0o755)
    env = site.env_with_stack(stack)
    bdc = BinaryDescriptionComponent(site.toolbox(), env)
    description = bdc.describe(path)
    libraries = bdc.gather_library_copies(description)
    edc = EnvironmentDiscoveryComponent(site.toolbox(), env)
    return SourceBundle(
        description=description, libraries=tuple(libraries), hello=None,
        guaranteed_environment=edc.discover(), created_at=site.name)


def _resolver(site):
    edc = EnvironmentDiscoveryComponent(site.toolbox())
    return ResolutionModel(site.toolbox(), edc.discover()), edc


class TestCopyUsable:
    def test_portable_copy_usable(self, donor, target):
        bundle = _bundle_for(donor)
        resolver, _ = _resolver(target)
        record = bundle.library("libifcore.so.5")
        env = target.machine.env.copy()
        decision = resolver.copy_usable(record, bundle, env)
        assert decision.usable, decision.reason

    def test_copy_needing_newer_libc_rejected(self, new_donor, make_site):
        from repro.mpi.implementations import open_mpi
        from repro.sites.site import StackRequest
        from repro.toolchain.compilers import CompilerFamily
        old_target = make_site(
            "oldtarget", libc_version="2.3.4",
            system_gnu_version="3.4.6", vendor_compilers=(),
            stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
        bundle = _bundle_for(new_donor, stack_slug="openmpi-1.4-gnu")
        resolver, _ = _resolver(old_target)
        record = bundle.library("libgfortran.so.3")
        assert record is not None and record.copied
        decision = resolver.copy_usable(
            record, bundle, old_target.machine.env.copy())
        assert not decision.usable
        assert "GLIBC" in decision.reason

    def test_uncopied_record_rejected(self, donor, target):
        bundle = _bundle_for(donor)
        resolver, _ = _resolver(target)
        libc_record = bundle.library("libc.so.6")
        decision = resolver.copy_usable(
            libc_record, bundle, target.machine.env.copy())
        assert not decision.usable
        assert "no copy" in decision.reason

    def test_recursive_dependency_through_bundle(self, donor, target):
        # libifcore's own deps (libimf, libintlc) are absent at the target
        # but present in the bundle -> still usable.
        bundle = _bundle_for(donor)
        resolver, _ = _resolver(target)
        record = bundle.library("libifcore.so.5")
        assert "libimf.so" in record.needed
        decision = resolver.copy_usable(
            record, bundle, target.machine.env.copy())
        assert decision.usable

    def test_missing_dependency_everywhere_rejected(self, donor, target):
        import dataclasses
        bundle = _bundle_for(donor)
        record = bundle.library("libifcore.so.5")
        broken = dataclasses.replace(
            record, needed=record.needed + ("libnowhere.so.9",))
        resolver, _ = _resolver(target)
        decision = resolver.copy_usable(
            broken, bundle, target.machine.env.copy())
        assert not decision.usable
        assert "libnowhere.so.9" in decision.reason

    def test_depth_limit(self, donor, target):
        bundle = _bundle_for(donor)
        resolver = ResolutionModel(
            target.toolbox(),
            EnvironmentDiscoveryComponent(target.toolbox()).discover(),
            FeamConfig(max_resolution_depth=0))
        record = bundle.library("libifcore.so.5")
        decision = resolver.copy_usable(
            record, bundle, target.machine.env.copy(), _depth=1)
        assert not decision.usable


class TestResolve:
    def test_stages_copies_and_env(self, donor, target):
        bundle = _bundle_for(donor)
        resolver, _ = _resolver(target)
        env = target.machine.env.copy()
        plan = resolver.resolve(
            ["libifcore.so.5", "libifport.so.5"], bundle, env,
            "/home/user/stage")
        assert plan.resolved_all
        fs = target.machine.fs
        assert fs.is_file("/home/user/stage/libifcore.so.5")
        # The transitive closure is staged with it.
        assert fs.is_file("/home/user/stage/libimf.so")
        assert ("LD_LIBRARY_PATH", "/home/user/stage") in plan.env_additions

    def test_staged_copies_load(self, donor, target):
        """End to end: after staging, the loader finds everything."""
        bundle = _bundle_for(donor)
        resolver, edc = _resolver(target)
        stack = target.find_stack("openmpi-1.4-intel") \
            if any(s.spec.slug == "openmpi-1.4-intel"
                   for s in target.stacks) else target.stacks[0]
        env = target.env_with_stack(stack)
        missing, _ = edc.missing_libraries(bundle.description, env)
        assert missing  # Intel runtime absent
        plan = resolver.resolve(missing, bundle, env, "/home/user/stage2")
        for var, path in plan.env_additions:
            env.prepend_path(var, path)
        missing_after, _ = edc.missing_libraries(bundle.description, env)
        assert missing_after == []
        binary = donor.machine.fs.read("/home/user/res-app")
        failure, report = target.machine.check_loadable(binary, env)
        assert failure is None, failure

    def test_soname_not_in_bundle(self, donor, target):
        bundle = _bundle_for(donor)
        resolver, _ = _resolver(target)
        plan = resolver.resolve(["libabsent.so.1"], bundle,
                                target.machine.env.copy(), "/home/user/s3")
        assert not plan.resolved_all
        assert plan.unresolved[0].soname == "libabsent.so.1"

    def test_activation_script(self, donor, target):
        bundle = _bundle_for(donor)
        resolver, _ = _resolver(target)
        plan = resolver.resolve(["libifcore.so.5", "libabsent.so.2"],
                                bundle, target.machine.env.copy(),
                                "/home/user/s4")
        script = plan.activation_script()
        assert script.startswith("#!/bin/sh")
        assert 'export LD_LIBRARY_PATH="/home/user/s4' in script
        assert "UNRESOLVED: libabsent.so.2" in script

    def test_staged_bytes_accounting(self, donor, target):
        bundle = _bundle_for(donor)
        resolver, _ = _resolver(target)
        plan = resolver.resolve(["libifcore.so.5"], bundle,
                                target.machine.env.copy(), "/home/user/s5")
        assert plan.staged_bytes > 1_000_000  # libifcore is ~1.7 MB
