"""Tail-based span sampling: policy order, determinism, subtree eviction.

The sampler's whole value is that its kept set is *reproducible*: the
seeded head sample rides on ``stable_uniform``, so the same seed must
elect the same cells in any process -- the 2-process ``-R`` check at
the bottom proves it the same way the fleet generator's tests do.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.core.config import FeamConfig
from repro.obs.sampling import (
    KEEP_REASONS,
    REASON_DEGRADED,
    REASON_DROPPED,
    REASON_FAULTED,
    REASON_HEAD_SAMPLE,
    REASON_SLO_BREACH,
    SamplingDecision,
    SamplingPolicy,
)

_SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestDecisionOrder:
    def test_faulted_wins_over_everything(self):
        policy = SamplingPolicy(seed=1, head_n=1, latency_slo_seconds=0.0)
        decision = policy.decide("s", "b", "unknown", True,
                                 wall_seconds=99.0)
        assert decision.keep and decision.reason == REASON_FAULTED

    def test_degraded_outcome_is_kept(self):
        policy = SamplingPolicy(seed=1, head_n=0, latency_slo_seconds=1e9)
        decision = policy.decide("s", "b", "unknown", False)
        assert decision.keep and decision.reason == REASON_DEGRADED

    def test_slo_breach_is_kept(self):
        policy = SamplingPolicy(seed=1, head_n=0, latency_slo_seconds=0.5)
        decision = policy.decide("s", "b", "ready", False,
                                 wall_seconds=0.6)
        assert decision.keep and decision.reason == REASON_SLO_BREACH

    def test_slo_clause_needs_a_wall_time(self):
        # Journal-restored cells never ran; the clause cannot fire.
        policy = SamplingPolicy(seed=1, head_n=0, latency_slo_seconds=0.0)
        decision = policy.decide("s", "b", "ready", False,
                                 wall_seconds=None)
        assert not decision.keep and decision.reason == REASON_DROPPED

    def test_wall_time_at_the_slo_is_not_a_breach(self):
        policy = SamplingPolicy(seed=1, head_n=0, latency_slo_seconds=0.5)
        assert not policy.decide("s", "b", "ready", False,
                                 wall_seconds=0.5).keep

    def test_healthy_fast_unsampled_cell_is_dropped(self):
        policy = SamplingPolicy(seed=1, head_n=0, latency_slo_seconds=1e9)
        decision = policy.decide("s", "b", "ready", False,
                                 wall_seconds=0.001)
        assert not decision
        assert decision.reason == REASON_DROPPED

    def test_decision_is_truthy_iff_kept(self):
        assert SamplingDecision(True, REASON_FAULTED)
        assert not SamplingDecision(False, REASON_DROPPED)

    def test_keep_reasons_cover_every_keeping_clause(self):
        assert KEEP_REASONS == (REASON_FAULTED, REASON_DEGRADED,
                                REASON_SLO_BREACH, REASON_HEAD_SAMPLE)
        assert REASON_DROPPED not in KEEP_REASONS


class TestHeadSample:
    def test_head_n_zero_disables_the_draw(self):
        policy = SamplingPolicy(seed=1, head_n=0)
        assert not any(policy.head_sampled(f"gen-{i:04d}", "b")
                       for i in range(200))

    def test_head_n_one_keeps_everything(self):
        policy = SamplingPolicy(seed=1, head_n=1, latency_slo_seconds=1e9)
        for index in range(50):
            decision = policy.decide(f"gen-{index:04d}", "b",
                                     "ready", False)
            assert decision.keep
            assert decision.reason == REASON_HEAD_SAMPLE

    def test_rate_is_roughly_one_in_n(self):
        policy = SamplingPolicy(seed=7, head_n=10)
        kept = sum(policy.head_sampled(f"gen-{i:04d}", "app-0")
                   for i in range(2000))
        assert 120 <= kept <= 280  # ~200 expected; generous CI margin

    def test_seed_changes_the_elected_set(self):
        sites = [f"gen-{i:04d}" for i in range(500)]
        kept_a = {s for s in sites
                  if SamplingPolicy(seed=1, head_n=10).head_sampled(s, "b")}
        kept_b = {s for s in sites
                  if SamplingPolicy(seed=2, head_n=10).head_sampled(s, "b")}
        assert kept_a and kept_b and kept_a != kept_b

    def test_same_seed_same_set_in_process(self):
        sites = [f"gen-{i:04d}" for i in range(500)]
        draws = [
            {s for s in sites
             if SamplingPolicy(seed=7, head_n=10).head_sampled(s, "b")}
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_from_config(self):
        config = FeamConfig(sampling_head_n=13,
                            sampling_latency_slo_seconds=0.75)
        policy = SamplingPolicy.from_config(config, seed=42)
        assert policy == SamplingPolicy(seed=42, head_n=13,
                                        latency_slo_seconds=0.75)


#: Printed by two hash-randomised interpreters; byte-identical output
#: proves the elected set never leans on process-dependent hashing.
_SUBPROCESS_SNIPPET = """
from repro.obs.sampling import SamplingPolicy
policy = SamplingPolicy(seed=7, head_n=5, latency_slo_seconds=1e9)
kept = [f"gen-{i:04d}" for i in range(300)
        if policy.decide(f"gen-{i:04d}", "app-0", "ready", False,
                         wall_seconds=0.001).keep]
print("\\n".join(kept))
"""


class TestCrossProcessDeterminism:
    def test_kept_set_is_byte_identical_across_processes(self):
        outputs = []
        for _ in range(2):
            result = subprocess.run(
                [sys.executable, "-R", "-c", _SUBPROCESS_SNIPPET],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": _SRC, "PATH": "/usr/bin:/bin"})
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip(), "head sample elected nothing"


class TestDiscardSubtrees:
    @staticmethod
    def _traced():
        with obs.capture() as collector:
            for cell in ("a", "b", "c"):
                with obs.span("engine.cell", site=cell):
                    with obs.span("determinant", site=cell):
                        with obs.span("probe", site=cell):
                            pass
            with obs.span("engine.matrix"):
                pass
        return collector.tracer

    def test_drops_root_and_descendants_transitively(self):
        tracer = self._traced()
        removed = tracer.discard_subtrees(
            lambda span: span.name == "engine.cell"
            and span.attrs.get("site") in {"a", "c"})
        assert removed == 6  # two cells x (cell + determinant + probe)
        survivors = {(s.name, s.attrs.get("site")) for s in tracer.spans}
        assert survivors == {("engine.cell", "b"), ("determinant", "b"),
                             ("probe", "b"), ("engine.matrix", None)}

    def test_no_match_removes_nothing(self):
        tracer = self._traced()
        before = list(tracer.spans)
        assert tracer.discard_subtrees(lambda span: False) == 0
        assert tracer.spans == before

    def test_null_tracer_is_a_no_op(self):
        from repro.obs.tracer import NullTracer
        assert NullTracer().discard_subtrees(lambda span: True) == 0

    def test_counters_add_up_under_a_matrix_style_loop(self):
        # The engine-facing identity: every decision is either kept or
        # dropped, and kept reasons break the total down exactly.
        policy = SamplingPolicy(seed=7, head_n=4, latency_slo_seconds=1e9)
        with obs.capture() as collector:
            for index in range(100):
                site = f"gen-{index:04d}"
                decision = policy.decide(site, "b", "ready", False,
                                         wall_seconds=0.001)
                if decision.keep:
                    obs.counter("obs.sampling.kept").inc()
                    obs.counter(
                        f"obs.sampling.kept.{decision.reason}").inc()
                else:
                    obs.counter("obs.sampling.dropped").inc()
        counters = collector.metrics.to_dict()["counters"]
        kept = counters.get("obs.sampling.kept", 0)
        dropped = counters.get("obs.sampling.dropped", 0)
        assert kept + dropped == 100
        assert counters.get("obs.sampling.kept.head-sample", 0) == kept
