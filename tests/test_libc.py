"""glibc release model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.elf import describe_elf
from repro.sysmodel.fs import VirtualFilesystem
from repro.toolchain.libc import (
    GLIBC_HISTORY,
    GlibcRelease,
    glibc,
    glibc_symbol,
    parse_banner,
    version_str,
)


def test_history_is_sorted():
    assert list(GLIBC_HISTORY) == sorted(GLIBC_HISTORY)


def test_lookup_by_string_and_tuple():
    assert glibc("2.5") is glibc((2, 5))
    assert glibc("2.3.4").version == (2, 3, 4)


def test_unknown_release_rejected():
    with pytest.raises(ValueError):
        GlibcRelease((9, 9))


def test_defined_versions_monotone():
    old = glibc("2.3.4").defined_versions
    new = glibc("2.12").defined_versions
    assert set(old) < set(new)
    assert old[-1] == "GLIBC_2.3.4"
    assert new[-1] == "GLIBC_2.12"


def test_defines():
    release = glibc("2.5")
    assert release.defines("GLIBC_2.5")
    assert release.defines("GLIBC_2.3.4")
    assert not release.defines("GLIBC_2.7")


def test_highest_at_most():
    release = glibc("2.12")
    assert release.highest_at_most((2, 7)) == (2, 7)
    assert release.highest_at_most((2, 6)) == (2, 6)
    old = glibc("2.3.4")
    assert old.highest_at_most((2, 7)) == (2, 3, 4)  # capped by release


def test_highest_at_most_below_floor_rejected():
    with pytest.raises(ValueError):
        glibc("2.5").highest_at_most((1, 0))


def test_banner_and_parse_roundtrip():
    release = glibc("2.11.1")
    assert parse_banner(release.banner) == "2.11.1"


def test_parse_banner_rejects_noise():
    assert parse_banner("hello world") is None
    assert parse_banner("release version soon") is None


def test_symbols():
    assert glibc_symbol((2, 3, 4)) == "GLIBC_2.3.4"
    assert version_str((2, 12)) == "2.12"


def test_install_writes_members_and_symlinks():
    fs = VirtualFilesystem()
    glibc("2.5").install(fs, "/lib64")
    assert fs.is_symlink("/lib64/libc.so.6")
    assert fs.is_file("/lib64/libc-2.5.so")
    assert fs.is_symlink("/lib64/libm.so.6")
    assert fs.is_symlink("/lib64/libpthread.so.0")


def test_installed_libc_elf_contents():
    fs = VirtualFilesystem()
    glibc("2.5").install(fs, "/lib64")
    info = describe_elf(fs.read("/lib64/libc.so.6"))
    assert info.soname == "libc.so.6"
    assert "GLIBC_2.5" in info.version_definitions
    assert "GLIBC_2.7" not in info.version_definitions
    assert "GLIBC_PRIVATE" in info.version_definitions
    assert any("GNU C Library" in c for c in info.comment)


def test_installed_member_depends_on_libc():
    fs = VirtualFilesystem()
    glibc("2.12").install(fs, "/lib64")
    info = describe_elf(fs.read("/lib64/libnsl.so.1"))
    assert info.needed == ("libc.so.6",)
    assert info.required_glibc is not None
    # A glibc member's copy requires its own release level: this is why
    # copies of libnsl from a 2.12 site fail on a 2.5 site.
    assert info.required_glibc.components == (2, 12)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(GLIBC_HISTORY), st.sampled_from(GLIBC_HISTORY))
def test_highest_at_most_properties(release_version, ceiling):
    release = GlibcRelease(release_version)
    result = release.highest_at_most(ceiling)
    assert result <= release_version
    assert result <= ceiling
    assert result in GLIBC_HISTORY
