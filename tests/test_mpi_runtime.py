"""Execution simulator (ground truth) tests."""

import pytest

from repro.mpi.runtime import BuildProvenance, RunRequest
from repro.mpi.provenance import GLOBAL_REGISTRY, ProvenanceRegistry
from repro.sysmodel.errors import ExecutionOutcome, FailureKind
from repro.toolchain.compilers import Language


@pytest.fixture
def site(make_site):
    return make_site("runtime-site")


@pytest.fixture
def stack(site):
    return site.find_stack("openmpi-1.4-gnu")


@pytest.fixture
def app(site, stack):
    return site.compile_mpi_program("app", Language.C, stack)


def _prov(site, stack, name="app"):
    return BuildProvenance(stack=stack.spec, build_site=site.name,
                           binary_name=name)


def test_local_run_succeeds(site, stack, app):
    result = site.run_with_retries("app", app.image, stack,
                                   provenance=_prov(site, stack))
    assert result.ok
    assert "ranks completed" in result.stdout


def test_misconfigured_stack_fails_everything(make_site):
    site = make_site("broken", misconfigured=("openmpi-1.4-gnu",))
    stack = site.find_stack("openmpi-1.4-gnu")
    app = site.compile_mpi_program("app", Language.C, stack)
    result = site.run_with_retries("app", app.image, stack,
                                   provenance=_prov(site, stack))
    assert not result.ok
    assert result.failure.kind is FailureKind.MPI_STACK_UNUSABLE


def test_missing_library_failure(site, make_site):
    # An Intel-built binary at a site whose matching stack is GNU-only:
    # the Intel runtime never reaches the loader's search path.
    from repro.mpi.implementations import open_mpi
    from repro.sites.site import StackRequest
    from repro.toolchain.compilers import CompilerFamily
    intel_stack = site.find_stack("openmpi-1.4-intel")
    app = site.compile_mpi_program("iapp", Language.C, intel_stack)
    bare = make_site(
        "bare", vendor_compilers=(),
        stacks=(StackRequest(open_mpi("1.4"), CompilerFamily.GNU),))
    gnu_stack = bare.find_stack("openmpi-1.4-gnu")
    result = bare.simulator.run(RunRequest(
        binary=app.image, stack=gnu_stack,
        env=bare.env_with_stack(gnu_stack),
        provenance=_prov(site, intel_stack, "iapp")))
    assert result.failure.kind is FailureKind.MISSING_LIBRARY


def test_missing_launcher_is_stack_unusable(site, stack, app, make_site):
    """Launching through a stack whose launcher command does not exist
    fails like a misconfigured stack (the per-MPI-type mpiexec override
    of Section V.C exists for exactly this)."""
    result = site.simulator.run(RunRequest(
        binary=app.image, stack=stack, env=site.env_with_stack(stack),
        provenance=_prov(site, stack), launcher="mpirun_rsh"))
    assert result.failure.kind is FailureKind.MPI_STACK_UNUSABLE
    assert "command not found" in result.failure.detail


def test_mvapich_ships_mpirun_rsh(make_site):
    from repro.mpi.implementations import mvapich2
    from repro.sites.site import StackRequest
    from repro.toolchain.compilers import CompilerFamily
    site = make_site(
        "mvsite",
        stacks=(StackRequest(mvapich2("1.7a"), CompilerFamily.GNU),))
    stack = site.find_stack("mvapich2-1.7a-gnu")
    assert site.machine.fs.is_executable(stack.bindir + "/mpirun_rsh")
    app = site.compile_mpi_program("mvapp", Language.C, stack)
    result = site.run_with_retries("mvapp", app.image, stack,
                                   provenance=_prov(site, stack, "mvapp"),
                                   launcher="mpirun_rsh")
    assert result.ok


def test_curse_is_persistent_across_attempts(site, stack, app):
    prov = _prov(site, stack, name="cursed-app")
    results = [
        site.execute("x", app.image, stack, provenance=prov,
                     curse_probability=1.0, attempt=attempt).result
        for attempt in range(5)]
    assert all(r.failure is not None and
               r.failure.kind is FailureKind.SYSTEM_ERROR for r in results)


def test_transient_errors_absorbed_by_retries(make_site):
    site = make_site("flaky")
    site.simulator.transient_error_probability = 0.5
    stack = site.find_stack("openmpi-1.4-gnu")
    app = site.compile_mpi_program("app", Language.C, stack)
    result = site.run_with_retries("app", app.image, stack,
                                   provenance=_prov(site, stack),
                                   attempts=30)
    assert result.ok  # 30 attempts at 50% each practically always pass


def test_abi_pair_draw_is_deterministic(site, stack, app, make_site):
    other = make_site("other-site", system_gnu_version="4.4.5")
    other_stack = other.find_stack("openmpi-1.4-gnu")
    prov = BuildProvenance(stack=other_stack.spec, build_site="other-site",
                           binary_name="migrant")
    first = site.simulator.run(RunRequest(
        binary=app.image, stack=stack, env=site.env_with_stack(stack),
        provenance=prov))
    second = site.simulator.run(RunRequest(
        binary=app.image, stack=stack, env=site.env_with_stack(stack),
        provenance=prov))
    assert first.outcome == second.outcome


def test_same_stack_no_abi_failure(site, stack, app):
    # Identical build and runtime stack: never an ABI/FP failure.
    for attempt in range(5):
        result = site.simulator.run(RunRequest(
            binary=app.image, stack=stack, env=site.env_with_stack(stack),
            provenance=_prov(site, stack), attempt=attempt))
        if result.failure:
            assert result.failure.kind is FailureKind.SYSTEM_ERROR


def test_non_elf_binary_rejected(site, stack):
    result = site.simulator.run(RunRequest(
        binary=b"#!/bin/sh\n", stack=stack, env=site.machine.env))
    assert result.failure.kind is FailureKind.EXEC_FORMAT


def test_elapsed_time_scales_with_size(site, stack):
    small = site.compile_mpi_program("small", Language.C, stack,
                                     payload_size=10_000)
    big = site.compile_mpi_program("big", Language.C, stack,
                                   payload_size=2_000_000)
    env = site.env_with_stack(stack)
    r_small = site.simulator.run(RunRequest(
        binary=small.image, stack=stack, env=env))
    r_big = site.simulator.run(RunRequest(
        binary=big.image, stack=stack, env=env))
    assert r_big.elapsed_seconds > r_small.elapsed_seconds


class TestProvenanceRegistry:
    def test_register_and_lookup(self, site, stack, app):
        # compile_mpi_program registers automatically.
        prov = GLOBAL_REGISTRY.lookup(app.image)
        assert prov is not None
        assert prov.build_site == site.name
        assert prov.stack.slug == "openmpi-1.4-gnu"

    def test_unknown_image(self):
        assert GLOBAL_REGISTRY.lookup(b"unknown bytes") is None

    def test_fresh_registry(self):
        registry = ProvenanceRegistry()
        assert len(registry) == 0
        prov = BuildProvenance.__new__(BuildProvenance)
        registry._by_hash["x"] = prov
        assert len(registry) == 1
