"""Shared-library naming and the paper's compatibility rule."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sysmodel.library import (
    LibraryName,
    minor_at_least,
    parse_library_name,
    sonames_compatible,
)


@pytest.mark.parametrize("name,stem,version", [
    ("libc.so.6", "libc", (6,)),
    ("libmpich.so.1.2", "libmpich", (1, 2)),
    ("libmpi.so.0.0.2", "libmpi", (0, 0, 2)),
    ("libimf.so", "libimf", ()),
    ("libstdc++.so.6.0.13", "libstdc++", (6, 0, 13)),
    ("libopen-rte.so.0", "libopen-rte", (0,)),
    ("libmpi_f77.so.0", "libmpi_f77", (0,)),
])
def test_parse(name, stem, version):
    parsed = parse_library_name(name)
    assert parsed == LibraryName(stem=stem, version=version)


def test_parse_with_path():
    parsed = parse_library_name("/usr/lib64/libz.so.1.2.3")
    assert parsed is not None
    assert parsed.stem == "libz"
    assert parsed.version == (1, 2, 3)


@pytest.mark.parametrize("name", ["notalib", "lib.so", "vmlinuz",
                                  "libfoo.a", "libfoo.so.x"])
def test_parse_rejects_non_libraries(name):
    assert parse_library_name(name) is None


def test_derived_names():
    name = LibraryName("libmpich", (1, 2))
    assert name.base_name == "libmpich.so"
    assert name.soname == "libmpich.so.1"
    assert name.full_name == "libmpich.so.1.2"
    assert name.major == 1
    assert name.with_version(3).soname == "libmpich.so.3"


def test_unversioned_soname():
    name = LibraryName("libimf", ())
    assert name.soname == "libimf.so"
    assert name.major is None


@pytest.mark.parametrize("required,available,compatible", [
    # Paper rule: equal majors are guaranteed compatible.
    ("libfoo.so.2", "libfoo.so.2", True),
    ("libfoo.so.2", "libfoo.so.2.5", True),
    ("libfoo.so.2", "libfoo.so.3", False),
    ("libfoo.so.2", "libbar.so.2", False),
    ("libimf.so", "libimf.so", True),
    ("libmpich.so.1.0", "libmpich.so.3", False),
    ("libmpich.so.3", "libmpich.so.3.0.1", True),
])
def test_soname_compatibility(required, available, compatible):
    assert sonames_compatible(required, available) is compatible


def test_minor_ordering():
    assert minor_at_least("libfoo.so.2.3", "libfoo.so.2.4")
    assert minor_at_least("libfoo.so.2.3", "libfoo.so.2.3")
    assert not minor_at_least("libfoo.so.2.3", "libfoo.so.2.2")
    assert not minor_at_least("libfoo.so.2.3", "libfoo.so.3.9")


@settings(max_examples=150, deadline=None)
@given(st.text("abcdefghij_", min_size=1, max_size=10),
       st.lists(st.integers(0, 40), max_size=4).map(tuple))
def test_full_name_roundtrips(stem_suffix, version):
    original = LibraryName(f"lib{stem_suffix}", version)
    parsed = parse_library_name(original.full_name)
    assert parsed == original


@settings(max_examples=150, deadline=None)
@given(st.text("abcdefg", min_size=1, max_size=8),
       st.integers(0, 50), st.integers(0, 50))
def test_compatibility_is_major_equality(stem, major_a, major_b):
    a = f"lib{stem}.so.{major_a}"
    b = f"lib{stem}.so.{major_b}"
    assert sonames_compatible(a, b) is (major_a == major_b)
    # And it's symmetric.
    assert sonames_compatible(a, b) == sonames_compatible(b, a)
