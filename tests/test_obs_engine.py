"""Engine instrumentation under concurrency: spans, parenting, metrics.

The matrix planner runs one worker thread per site; the trace must
still come out whole -- every cell span parented under its site span,
every site span under the single matrix span, and the live metrics
counters in exact agreement with the engine's own ``CacheStats``.
"""

import pytest

from repro import obs
from repro.core.engine import EngineBinary, EvaluationEngine
from repro.sites.catalog import build_paper_sites
from repro.toolchain.compilers import Language


@pytest.fixture(scope="module")
def traced_matrix():
    """All five paper sites x two binaries, evaluated under a collector."""
    sites = build_paper_sites(424242, cached=False)
    binaries = []
    for index, site_name in enumerate(["fir", "ranger"]):
        site = next(s for s in sites if s.name == site_name)
        stack = site.stacks[0]
        name = f"obs-{site_name}"
        linked = site.compile_mpi_program(name, Language.FORTRAN, stack)
        binaries.append(EngineBinary(binary_id=name, image=linked.image))
    engine = EvaluationEngine(max_workers=4)
    with obs.capture() as collector:
        result = engine.evaluate_matrix(binaries, sites)
    return sites, binaries, engine, collector, result


class TestSpanCounts:
    def test_one_span_per_unit_of_work(self, traced_matrix):
        sites, binaries, engine, collector, result = traced_matrix
        cells = len(binaries) * len(sites)
        tracer = collector.tracer
        assert len(tracer.spans_named("engine.matrix")) == 1
        assert len(tracer.spans_named("engine.site")) == len(sites)
        assert len(tracer.spans_named("engine.cell")) == cells
        # One discovery probe per cell (hit or miss)...
        assert len(tracer.spans_named("engine.discover")) == cells
        # ...but describe spans only where the description cache missed.
        assert len(tracer.spans_named("engine.describe")) == \
            engine.stats.description_misses
        # Four determinants per evaluated cell (pass, fail or skipped).
        assert len(tracer.spans_named("determinant")) == 4 * cells

    def test_span_ids_unique_across_workers(self, traced_matrix):
        _, _, _, collector, _ = traced_matrix
        ids = [s.span_id for s in collector.spans]
        assert len(ids) == len(set(ids))


class TestParenting:
    def test_sites_under_matrix_cells_under_sites(self, traced_matrix):
        sites, _, _, collector, _ = traced_matrix
        tracer = collector.tracer
        (matrix,) = tracer.spans_named("engine.matrix")
        site_spans = tracer.spans_named("engine.site")
        assert {s.parent_id for s in site_spans} == {matrix.span_id}
        assert {s.attrs["site"] for s in site_spans} == \
            {site.name for site in sites}
        site_by_id = {s.span_id: s for s in site_spans}
        for cell in tracer.spans_named("engine.cell"):
            parent = site_by_id[cell.parent_id]
            assert cell.attrs["site"] == parent.attrs["site"]

    def test_determinants_nested_inside_their_cell(self, traced_matrix):
        _, _, _, collector, _ = traced_matrix
        by_id = {s.span_id: s for s in collector.spans}

        def ancestor_cell(span):
            while span.parent_id is not None:
                span = by_id[span.parent_id]
                if span.name == "engine.cell":
                    return span
            return None

        determinants = collector.tracer.spans_named("determinant")
        assert determinants
        for det in determinants:
            assert ancestor_cell(det) is not None
            assert "outcome" in det.attrs

    def test_site_spans_ran_on_worker_threads(self, traced_matrix):
        _, _, _, collector, _ = traced_matrix
        (matrix,) = collector.tracer.spans_named("engine.matrix")
        threads = {s.thread for s in collector.tracer.spans_named(
            "engine.site")}
        assert len(threads) > 1  # genuinely parallel run
        assert matrix.thread not in threads


class TestMetricsAgreement:
    def test_counters_equal_engine_cache_stats(self, traced_matrix):
        _, _, engine, collector, _ = traced_matrix
        stats = engine.stats
        for layer in ("description", "discovery", "evaluation"):
            hits = collector.metrics.counter(
                f"engine.cache.{layer}.hits").value
            misses = collector.metrics.counter(
                f"engine.cache.{layer}.misses").value
            assert hits == getattr(stats, f"{layer}_hits")
            assert misses == getattr(stats, f"{layer}_misses")

    def test_counters_equal_summed_per_cell_cache_info(self, traced_matrix):
        _, _, _, collector, result = traced_matrix
        for layer in ("description", "discovery", "evaluation"):
            cell_hits = sum(
                getattr(c.report.cache, f"{layer}_hit")
                for c in result.cells)
            cell_misses = len(result.cells) - cell_hits
            assert collector.metrics.counter(
                f"engine.cache.{layer}.hits").value == cell_hits
            assert collector.metrics.counter(
                f"engine.cache.{layer}.misses").value == cell_misses

    def test_cell_histogram_and_utilization_gauge(self, traced_matrix):
        _, _, _, collector, result = traced_matrix
        summary = collector.metrics.histogram(
            "engine.cell.wall_seconds").summary()
        assert summary["count"] == len(result.cells)
        utilization = collector.metrics.gauge(
            "engine.matrix.worker_utilization").value
        assert utilization is not None and utilization > 0
        (matrix,) = collector.tracer.spans_named("engine.matrix")
        assert matrix.attrs["cells"] == len(result.cells)


class TestOutcomeWords:
    """UNKNOWN cells must never render like a pass or a hard fail."""

    @staticmethod
    def _cell(site_name, *outcomes):
        from repro.core.engine import MatrixCell
        from repro.core.evaluation import TargetReport
        from repro.core.prediction import (
            Determinant,
            DeterminantResult,
            Prediction,
            PredictionMode,
        )
        determinants = tuple(
            DeterminantResult(det, outcome) for det, outcome in zip(
                (Determinant.ISA, Determinant.C_LIBRARY), outcomes))
        ready = all(r.passed is not False for r in determinants)
        report = TargetReport(
            prediction=Prediction(ready=ready, mode=PredictionMode.BASIC,
                                  determinants=determinants),
            environment=None)
        return MatrixCell(binary_id="synthetic", site_name=site_name,
                          report=report)

    def test_three_distinct_words(self):
        assert self._cell("a", True, True).outcome_word == "ready"
        assert self._cell("b", True, None).outcome_word == "unknown"
        assert self._cell("c", True, False).outcome_word == "no"

    def test_grid_renders_all_three(self):
        from repro.core.engine import CacheStats, MatrixResult
        result = MatrixResult(
            cells=[self._cell("a", True, True),
                   self._cell("b", True, None),
                   self._cell("c", True, False)],
            stats=CacheStats())
        rendered = result.render(verbose=True)
        for word in ("ready", "unknown", "no"):
            assert word in rendered
        # Verbose names the undecided determinant on the unknown cell.
        assert "c-library-compatibility=unknown" in rendered
        assert "[uncached]" in rendered


class TestRenderAndInvalidation:
    def test_verbose_render_has_cache_provenance(self, traced_matrix):
        _, _, _, _, result = traced_matrix
        rendered = result.render(verbose=True)
        assert "legend:" in rendered
        assert "description=" in rendered and "evaluation=" in rendered

    def test_refresh_emits_invalidation_event(self, make_site):
        site = make_site("obs-inval")
        engine = EvaluationEngine()
        stack = site.find_stack("openmpi-1.4-intel")
        app = site.compile_mpi_program("inv-app", Language.FORTRAN, stack)
        with obs.capture() as collector:
            engine.evaluate_matrix(
                [EngineBinary("inv-app", app.image)], [site])
            site.machine.fs.write_text(
                "/etc/redhat-release", "CentOS release 6.2 (Final)\n")
            engine.refresh_site(site)
        events = collector.events.named("engine.site_invalidated")
        assert len(events) == 1
        assert events[0].attrs["site"] == site.name
        assert collector.metrics.counter("engine.invalidations").value == 1
