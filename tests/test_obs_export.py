"""JSONL trace round-trip: export, parse, rebuild the span tree."""

import pytest

from repro import obs
from repro.obs.export import (
    export_jsonl,
    parse_jsonl,
    render_span_tree,
    span_tree,
)

#: Sonames nobody should ever ship -- but attribute escaping must
#: survive them anyway (quotes, backslashes, newlines, non-ASCII).
ODD_SONAMES = [
    'lib"quoted".so.1',
    "lib\\back\\slash.so",
    "libnew\nline.so.6",
    "libctrl\x07bell.so",
    "libüñïcode.so.2",
]


def _traced_collector():
    with obs.capture() as collector:
        with obs.span("root", kind="demo") as root:
            root.add_sim_seconds(4.5)
            with obs.span("child-a", index=0):
                obs.event("tick", step=1)
            with obs.span("child-b", index=1):
                with obs.span("grandchild", deep=True):
                    pass
        obs.counter("demo.count").inc(3)
        obs.histogram("demo.seconds").observe(0.02)
    return collector


class TestRoundTrip:
    def test_every_line_is_json(self):
        import json
        text = export_jsonl(_traced_collector())
        lines = text.strip().splitlines()
        assert len(lines) == 4 + 1 + 1  # spans + event + metrics
        for line in lines:
            json.loads(line)

    def test_spans_events_metrics_survive(self):
        collector = _traced_collector()
        parsed = parse_jsonl(export_jsonl(collector))
        assert len(parsed.spans) == len(collector.spans)
        by_name = {s.name: s for s in parsed.spans}
        root = by_name["root"]
        assert root.attrs == {"kind": "demo"}
        assert root.sim_seconds == pytest.approx(4.5)
        assert root.parent_id is None
        assert by_name["grandchild"].parent_id == by_name["child-b"].span_id
        (event,) = parsed.events
        assert event.name == "tick" and event.attrs == {"step": 1}
        assert parsed.metrics["counters"]["demo.count"] == 3
        assert parsed.metrics["histograms"]["demo.seconds"]["count"] == 1

    def test_tree_reconstruction_matches_original(self):
        collector = _traced_collector()
        parsed = parse_jsonl(export_jsonl(collector))

        def shape(roots):
            return [(n.span.name, shape(n.children)) for n in roots]

        assert shape(span_tree(parsed.spans)) == \
            shape(span_tree(collector.spans))
        assert shape(span_tree(parsed.spans)) == [
            ("root", [("child-a", []), ("child-b", [("grandchild", [])])])]

    def test_odd_sonames_round_trip_exactly(self):
        with obs.capture() as collector:
            for soname in ODD_SONAMES:
                with obs.span("resolution.copy", soname=soname):
                    pass
                obs.event("resolution.staged", soname=soname)
        parsed = parse_jsonl(export_jsonl(collector))
        assert [s.attrs["soname"] for s in parsed.spans] == ODD_SONAMES
        assert [e.attrs["soname"] for e in parsed.events] == ODD_SONAMES

    def test_non_native_attrs_are_stringified(self):
        from repro.core.prediction import Outcome
        with obs.capture() as collector:
            with obs.span("op", outcome=Outcome.PASS, path=("a", "b")):
                pass
        parsed = parse_jsonl(export_jsonl(collector))
        attrs = parsed.spans[0].attrs
        assert isinstance(attrs["outcome"], str)
        assert attrs["path"] == ["a", "b"]


class TestParseErrors:
    def test_invalid_json_names_the_line(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_jsonl('{"type": "metrics"}\n{not json}\n')

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ValueError, match="unknown record type"):
            parse_jsonl('{"type": "mystery"}\n')

    def test_blank_lines_ignored(self):
        parsed = parse_jsonl("\n\n")
        assert parsed.spans == [] and parsed.events == []


class TestRender:
    def test_tree_render_escapes_newlines_and_shows_outcomes(self):
        with obs.capture() as collector:
            with obs.span("determinant", key="isa", outcome="pass"):
                with obs.span("resolution.copy",
                              soname="libnew\nline.so.6"):
                    pass
        rendered = render_span_tree(collector.spans)
        assert "libnew\\nline.so.6" in rendered  # literal, not a break
        assert "\n`- resolution.copy" in rendered
        assert "outcome=pass" in rendered

    def test_orphan_parent_becomes_root(self):
        collector = _traced_collector()
        parsed = parse_jsonl(export_jsonl(collector))
        orphans = [s for s in parsed.spans if s.name != "root"]
        roots = span_tree(orphans)  # root span withheld
        assert {n.span.name for n in roots} == {"child-a", "child-b"}
