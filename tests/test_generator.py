"""The parametric site generator: spec parsing, determinism, cloning.

The fleet generator must be a pure function of ``(spec, index)``: the
same ``fleet:...`` string yields byte-identical site fingerprints in
any process (:func:`repro.util.hashing.stable_uniform` is seeded
hashing, never Python's per-process ``hash``).  Building shares one
template :class:`~repro.sites.site.Site` per install-content class and
clones the rest, so clones must be fully isolated from their template
at the filesystem level.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.sites.generator import (
    SiteGenerator,
    content_key,
    describe_fleet,
    parse_fleet_spec,
    resolve_sites,
    spec_fingerprint,
    template_key,
)

_SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestParseFleetSpec:
    def test_full_spec(self):
        spec = parse_fleet_spec("fleet:n=1000,seed=7,prefix=lab")
        assert spec.count == 1000
        assert spec.seed == 7
        assert spec.name_prefix == "lab"

    def test_defaults(self):
        spec = parse_fleet_spec("fleet:n=10")
        assert spec.count == 10
        assert spec.name_prefix == "gen"

    def test_count_defaults_to_100(self):
        assert parse_fleet_spec("fleet:seed=7").count == 100
        assert parse_fleet_spec("fleet:").count == 100

    def test_render_round_trips(self):
        spec = parse_fleet_spec("fleet:n=42,seed=9")
        assert parse_fleet_spec(spec.render()) == spec

    @pytest.mark.parametrize("text", [
        "fleet:n=0", "fleet:n=10001", "fleet:n=5,bad=1",
        "cluster:n=5", "fleet:n=x", "fleet:n=5,prefix=a/b",
    ])
    def test_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            parse_fleet_spec(text)


class TestDeterminism:
    """Same spec -> byte-identical fingerprints, across processes."""

    SPEC = "fleet:n=200,seed=11"
    SNIPPET = (
        "from repro.sites.generator import SiteGenerator, "
        "parse_fleet_spec\n"
        "g = SiteGenerator(parse_fleet_spec({spec!r}))\n"
        "print('\\n'.join(g.fingerprints()))\n"
    )

    def _subprocess_fingerprints(self) -> str:
        # -R randomises the string-hash seed: if anything in the
        # pipeline leaked through builtins ``hash``, the two child
        # processes would disagree.
        result = subprocess.run(
            [sys.executable, "-R", "-c",
             self.SNIPPET.format(spec=self.SPEC)],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": _SRC, "PATH": "/usr/bin:/bin"})
        return result.stdout

    def test_fingerprints_identical_across_processes(self):
        first = self._subprocess_fingerprints()
        second = self._subprocess_fingerprints()
        assert first == second
        # ... and they match this process, too.
        ours = SiteGenerator(parse_fleet_spec(self.SPEC)).fingerprints()
        assert first.strip().splitlines() == ours

    def test_different_seed_different_fleet(self):
        a = SiteGenerator(parse_fleet_spec("fleet:n=50,seed=1"))
        b = SiteGenerator(parse_fleet_spec("fleet:n=50,seed=2"))
        assert a.fingerprints() != b.fingerprints()

    def test_prefix_changes_fingerprint_but_not_content(self):
        a = SiteGenerator(parse_fleet_spec("fleet:n=5,seed=3"))
        b = SiteGenerator(
            parse_fleet_spec("fleet:n=5,seed=3,prefix=other"))
        for spec_a, spec_b in zip(a.site_specs(), b.site_specs()):
            assert spec_fingerprint(spec_a) != spec_fingerprint(spec_b)
            assert content_key(spec_a) == content_key(spec_b)


class TestGeneratedSpecs:
    def test_names_are_sequential(self):
        generator = SiteGenerator(parse_fleet_spec("fleet:n=3,seed=1"))
        names = [generator.site_spec(i).name for i in range(3)]
        assert names == ["gen-0000", "gen-0001", "gen-0002"]

    def test_spec_space_is_diverse(self):
        generator = SiteGenerator(parse_fleet_spec("fleet:n=200,seed=5"))
        specs = generator.site_specs()
        assert len({s.distro for s in specs}) > 1
        assert len({s.scheduler_flavor for s in specs}) > 1
        assert len({template_key(s) for s in specs}) > 5
        assert any(s.misconfigured for s in specs)
        assert any(s.missing_tools for s in specs)

    def test_content_key_refines_template_key(self):
        # Same template may split into several content classes
        # (scheduler, misconfig); never the other way around.
        generator = SiteGenerator(parse_fleet_spec("fleet:n=200,seed=5"))
        content_to_template = {}
        for spec in generator.site_specs():
            ckey, tkey = content_key(spec), template_key(spec)
            assert content_to_template.setdefault(ckey, tkey) == tkey


class TestBuiltFleet:
    @pytest.fixture(scope="class")
    def fleet(self):
        generator = SiteGenerator(parse_fleet_spec("fleet:n=12,seed=4"))
        return generator, generator.build()

    def test_builds_fewer_templates_than_sites(self, fleet):
        generator, sites = fleet
        assert len(sites) == 12
        assert generator.template_count < len(sites)

    def test_sites_carry_their_content_key(self, fleet):
        generator, sites = fleet
        for spec, site in zip(generator.site_specs(), sites):
            assert site.content_key == content_key(spec)
            assert site.name == spec.name

    def test_clones_are_isolated(self, fleet):
        _, sites = fleet
        grouped = {}
        for site in sites:
            grouped.setdefault(site.content_key, []).append(site)
        group = next(g for g in grouped.values() if len(g) > 1)
        first, second = group[0], group[1]
        assert first.machine.fs is not second.machine.fs
        first.machine.fs.write("/tmp/only-here", b"x")
        assert not second.machine.fs.is_file("/tmp/only-here")

    def test_clone_runs_its_own_toolchain(self, fleet):
        # A cloned site must be a working site: modules loadable,
        # binaries compilable, scheduler answering.
        from repro.toolchain.compilers import Language

        _, sites = fleet
        clone = sites[-1]
        stack = clone.stacks[0]
        linked = clone.compile_mpi_program("probe", Language.C, stack)
        assert linked.image


class TestResolveSites:
    def test_paper_spec(self):
        sites = resolve_sites("paper")
        assert [s.name for s in sites] == [
            "ranger", "forge", "blacklight", "india", "fir"]
        assert all(getattr(s, "content_key", None) is None
                   for s in sites)

    def test_fleet_spec(self):
        sites = resolve_sites("fleet:n=3,seed=2")
        assert len(sites) == 3
        assert all(s.content_key is not None for s in sites)

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError):
            resolve_sites("nonsense")

    def test_describe_fleet(self):
        sites = resolve_sites("fleet:n=3,seed=2")
        text = describe_fleet(sites)
        assert "3 site(s)" in text
