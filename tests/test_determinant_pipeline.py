"""The pluggable determinant pipeline: registry, tri-state, reports."""

import pytest

from repro.core import Feam, FeamConfig
from repro.core.determinants import (
    DeterminantRegistry,
    default_registry,
)
from repro.core.determinants.base import DeterminantContext, RegistryError
from repro.core.discovery import EnvironmentDescription
from repro.core.evaluation import TargetEvaluationComponent, TargetReport
from repro.core.prediction import (
    Determinant,
    DeterminantResult,
    Outcome,
    Prediction,
    PredictionMode,
)
from repro.core.report import render_target_report
from repro.toolchain.compilers import Language


class StubCheck:
    """A scriptable check that records when it ran."""

    def __init__(self, key, outcome, depends_on=(), log=None):
        self.key = key
        self.depends_on = tuple(depends_on)
        self._outcome = outcome
        self._log = log if log is not None else []

    def run(self, ctx):
        self._log.append(self.key)
        if self._outcome is None:
            return None
        return DeterminantResult(self.key, self._outcome, "stub")


def _bare_ctx():
    return DeterminantContext(
        description=None, environment=None, config=None, services=None)


class TestRegistry:
    def test_default_order_is_the_papers(self):
        assert default_registry().keys == (
            Determinant.ISA.value,
            Determinant.C_LIBRARY.value,
            Determinant.MPI_STACK.value,
            Determinant.SHARED_LIBRARIES.value,
        )

    def test_runs_in_registration_order(self):
        log = []
        registry = DeterminantRegistry((
            StubCheck("a", Outcome.PASS, log=log),
            StubCheck("b", Outcome.PASS, log=log),
            StubCheck("c", Outcome.PASS, depends_on=("a",), log=log)))
        results = registry.run(_bare_ctx())
        assert log == ["a", "b", "c"]
        assert [r.key for r in results] == ["a", "b", "c"]

    def test_short_circuit_skips_dependents_of_a_failure(self):
        log = []
        registry = DeterminantRegistry((
            StubCheck("isa", Outcome.FAIL, log=log),
            StubCheck("libc", Outcome.PASS, log=log),
            StubCheck("mpi", Outcome.PASS, depends_on=("isa", "libc"),
                      log=log),
            StubCheck("libs", Outcome.PASS, depends_on=("mpi",), log=log)))
        results = registry.run(_bare_ctx())
        # libc has no dependencies and still runs (the paper reports both
        # gates); mpi and, transitively, libs are skipped entirely.
        assert log == ["isa", "libc"]
        assert [r.key for r in results] == ["isa", "libc"]

    def test_unknown_outcome_does_not_gate(self):
        log = []
        registry = DeterminantRegistry((
            StubCheck("libc", Outcome.UNKNOWN, log=log),
            StubCheck("mpi", Outcome.PASS, depends_on=("libc",), log=log)))
        results = registry.run(_bare_ctx())
        assert log == ["libc", "mpi"]
        assert results[1].outcome is Outcome.PASS

    def test_duplicate_key_rejected(self):
        registry = DeterminantRegistry((StubCheck("a", Outcome.PASS),))
        with pytest.raises(RegistryError):
            registry.register(StubCheck("a", Outcome.PASS))

    def test_unknown_dependency_rejected(self):
        with pytest.raises(RegistryError):
            DeterminantRegistry((StubCheck("b", Outcome.PASS,
                                           depends_on=("nope",)),))

    def test_amended_result_keeps_its_slot(self):
        ctx = _bare_ctx()
        registry = DeterminantRegistry((
            StubCheck("first", Outcome.PASS),
            StubCheck("second", Outcome.PASS)))
        registry.run(ctx)
        ctx.amend("first", DeterminantResult("first", Outcome.FAIL, "later"))
        assert [r.key for r in ctx.results.values()] == ["first", "second"]
        assert ctx.results["first"].outcome is Outcome.FAIL


class TestTriState:
    def test_legacy_bool_coercion(self):
        assert DeterminantResult(Determinant.ISA, True).outcome \
            is Outcome.PASS
        assert DeterminantResult(Determinant.ISA, False).outcome \
            is Outcome.FAIL
        assert DeterminantResult(Determinant.ISA, None).outcome \
            is Outcome.UNKNOWN

    def test_passed_view_roundtrips(self):
        assert DeterminantResult(Determinant.ISA, Outcome.PASS).passed is True
        assert DeterminantResult(Determinant.ISA, Outcome.FAIL).passed \
            is False
        assert DeterminantResult(Determinant.ISA,
                                 Outcome.UNKNOWN).passed is None

    def test_unknown_determinants_listed(self):
        prediction = Prediction(
            ready=True, mode=PredictionMode.BASIC,
            determinants=(
                DeterminantResult(Determinant.ISA, Outcome.PASS, "ok"),
                DeterminantResult(Determinant.C_LIBRARY, Outcome.UNKNOWN,
                                  "libc unreadable"),
            ))
        assert prediction.unknown_determinants == (Determinant.C_LIBRARY,)
        assert prediction.failed_determinants == ()

    def test_unknown_renders_as_unknown_not_pass(self):
        environment = EnvironmentDescription(
            hostname="mystery", isa="x86_64", os_type="Linux",
            os_version=None, distro=None, libc_version=None, libc_path=None,
            libc_via=None, stacks=(), env_tool=None)
        prediction = Prediction(
            ready=True, mode=PredictionMode.BASIC,
            determinants=(
                DeterminantResult(Determinant.ISA, Outcome.PASS, "ok"),
                DeterminantResult(
                    Determinant.C_LIBRARY, Outcome.UNKNOWN,
                    "binary requires GLIBC_2.7, target has unknown"),
            ))
        text = render_target_report(TargetReport(
            prediction=prediction, environment=environment))
        assert "[UNKNOWN] c-library-compatibility" in text
        assert "outcome unknown for c-library-compatibility" in text
        assert "[PASS] c-library-compatibility" not in text


class _GpuRuntimeCheck:
    """A custom fifth determinant: is a CUDA runtime present?"""

    key = "gpu-runtime"
    depends_on = (Determinant.ISA.value,)

    def run(self, ctx):
        present = ctx.services.site.machine.fs.is_file(
            "/usr/lib64/libcudart.so.4")
        return DeterminantResult(
            self.key, Outcome.PASS if present else Outcome.FAIL,
            "libcudart.so.4 " + ("present" if present else "not found"))


class TestCustomCheck:
    def _evaluate_with_gpu_check(self, make_site):
        donor = make_site("pipe-donor")
        stack = donor.find_stack("openmpi-1.4-intel")
        app = donor.compile_mpi_program("p-app", Language.FORTRAN, stack)
        twin = make_site("pipe-twin")
        twin.machine.fs.write("/home/user/p-app", app.image, mode=0o755)
        registry = default_registry()
        registry.register(_GpuRuntimeCheck())
        tec = TargetEvaluationComponent(twin, registry=registry)
        from repro.core.description import BinaryDescriptionComponent
        description = BinaryDescriptionComponent(
            twin.toolbox()).describe("/home/user/p-app")
        return twin, tec.evaluate(description, binary_path="/home/user/p-app",
                                  staging_tag="gpu")

    def test_custom_check_runs_and_reports(self, make_site):
        twin, report = self._evaluate_with_gpu_check(make_site)
        result = report.prediction.determinant("gpu-runtime")
        assert result.outcome is Outcome.FAIL
        assert report.prediction.failed_determinants == ("gpu-runtime",)
        assert not report.ready
        text = twin.machine.fs.read_text(report.output_path)
        assert "[FAIL] gpu-runtime: libcudart.so.4 not found" in text


class TestTimingModelConfig:
    def test_defaults_match_the_seed_constants(self):
        config = FeamConfig()
        assert config.feam_base_seconds == 10.0
        assert config.feam_seconds_per_dependency == 0.2
        assert config.stack_assessment_seconds == 25.0
        assert config.library_check_seconds == 0.5
        assert config.resolution_seconds_per_library == 2.0
        assert config.hello_retest_seconds == 20.0

    def test_parse_and_render_roundtrip(self):
        config = FeamConfig(feam_base_seconds=3.5,
                            stack_assessment_seconds=40.0)
        parsed = FeamConfig.parse(config.render())
        assert parsed == config

    def test_evaluation_uses_configured_base(self, make_site):
        donor = make_site("timing-donor")
        stack = donor.find_stack("openmpi-1.4-intel")
        app = donor.compile_mpi_program("t-app", Language.FORTRAN, stack)
        twin = make_site("timing-twin")
        twin.machine.fs.write("/home/user/t-app", app.image, mode=0o755)
        feam = Feam(FeamConfig(feam_base_seconds=500.0))
        report = feam.run_target_phase(twin, binary_path="/home/user/t-app")
        assert report.feam_seconds >= 500.0
