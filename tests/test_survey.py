"""The multi-site survey API."""

import pytest

from repro.core.survey import survey_sites
from repro.toolchain.compilers import Language


@pytest.fixture(scope="module")
def survey_world():
    from repro.sites.catalog import build_paper_sites
    sites = build_paper_sites(20202, cached=False)
    by_name = {s.name: s for s in sites}
    india = by_name["india"]
    stack = india.find_stack("openmpi-1.4-gnu")
    app = india.compile_mpi_program("svapp", Language.C, stack,
                                    glibc_ceiling=(2, 4))
    india.machine.fs.write("/home/user/svapp", app.image, mode=0o755)
    result = survey_sites(
        india, "/home/user/svapp", sites,
        env=india.env_with_stack(stack))
    return sites, result


def test_one_verdict_per_target(survey_world):
    sites, result = survey_world
    assert len(result.verdicts) == len(sites) - 1  # home site excluded
    assert {v.site_name for v in result.verdicts} == {
        "ranger", "forge", "blacklight", "fir"}


def test_verdicts_have_both_modes(survey_world):
    _sites, result = survey_world
    for verdict in result.verdicts:
        assert verdict.basic is not None
        assert verdict.extended is not None


def test_ranger_rejected_on_libc(survey_world):
    """glibc-2.4-level binary from a 2.5 site cannot run on 2.3.4."""
    _sites, result = survey_world
    ranger = next(v for v in result.verdicts if v.site_name == "ranger")
    assert not ranger.ready
    assert any("C library" in reason for reason in ranger.reasons)


def test_fir_ready(survey_world):
    """india -> fir is the clean twin migration."""
    _sites, result = survey_world
    fir = next(v for v in result.verdicts if v.site_name == "fir")
    assert fir.ready
    assert "fir" in result.ready_sites


def test_render(survey_world):
    _sites, result = survey_world
    text = result.render()
    assert "site" in text and "extended" in text
    for verdict in result.verdicts:
        assert verdict.site_name in text
