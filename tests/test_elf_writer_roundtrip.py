"""Round-trip tests: images from the writer parse back identically."""

import pytest

from repro.elf import (
    BinarySpec,
    ElfClass,
    ElfData,
    ElfError,
    ElfMachine,
    ElfType,
    describe_elf,
    parse_elf,
    write_elf,
)
from repro.elf.constants import DynamicTag, SectionType


def test_minimal_executable_roundtrip():
    spec = BinarySpec(needed=("libc.so.6",))
    info = describe_elf(write_elf(spec))
    assert info.needed == ("libc.so.6",)
    assert info.etype is ElfType.EXEC
    assert info.bits == 64
    assert info.machine is ElfMachine.X86_64
    assert info.is_dynamic


def test_needed_order_preserved():
    needed = ("libmpi.so.0", "libz.so.1", "libm.so.6", "libc.so.6")
    info = describe_elf(write_elf(BinarySpec(needed=needed)))
    assert info.needed == needed


def test_soname_and_type_for_shared_library():
    spec = BinarySpec(etype=ElfType.DYN, soname="libfoo.so.3",
                      needed=("libc.so.6",))
    info = describe_elf(write_elf(spec))
    assert info.soname == "libfoo.so.3"
    assert info.is_shared_library


def test_pie_executable_is_not_shared_library():
    # ET_DYN without a soname = position-independent executable.
    spec = BinarySpec(etype=ElfType.DYN, needed=("libc.so.6",))
    info = describe_elf(write_elf(spec))
    assert not info.is_shared_library


def test_version_requirements_roundtrip():
    spec = BinarySpec(
        needed=("libc.so.6", "libgfortran.so.1"),
        version_requirements={
            "libc.so.6": ("GLIBC_2.2.5", "GLIBC_2.3.4"),
            "libgfortran.so.1": ("GFORTRAN_1.0",),
        })
    elf = parse_elf(write_elf(spec))
    by_file = {req.filename: [v.name for v in req.versions]
               for req in elf.version_requirements}
    assert by_file == {
        "libc.so.6": ["GLIBC_2.2.5", "GLIBC_2.3.4"],
        "libgfortran.so.1": ["GFORTRAN_1.0"],
    }


def test_version_definitions_roundtrip():
    spec = BinarySpec(
        etype=ElfType.DYN, soname="libbar.so.2",
        version_definitions=("libbar.so.2", "BAR_2.0", "BAR_2.1"))
    elf = parse_elf(write_elf(spec))
    names = [d.name.name for d in elf.version_definitions]
    assert names == ["libbar.so.2", "BAR_2.0", "BAR_2.1"]
    assert elf.version_definitions[0].is_base
    assert not elf.version_definitions[1].is_base


def test_comment_roundtrip_deduplicates():
    spec = BinarySpec(comment=("GCC: (GNU) 4.1.2", "GCC: (GNU) 4.1.2",
                               "Intel(R) Compiler Version 11.1"))
    info = describe_elf(write_elf(spec))
    assert info.comment == ("GCC: (GNU) 4.1.2",
                            "Intel(R) Compiler Version 11.1")


def test_rpath_and_runpath():
    spec = BinarySpec(needed=("libc.so.6",), rpath="/opt/app/lib",
                      runpath="/usr/local/app/lib")
    info = describe_elf(write_elf(spec))
    assert info.rpath == "/opt/app/lib"
    assert info.runpath == "/usr/local/app/lib"


@pytest.mark.parametrize("elf_class,data,machine,bits", [
    (ElfClass.ELF64, ElfData.LSB, ElfMachine.X86_64, 64),
    (ElfClass.ELF32, ElfData.LSB, ElfMachine.X86, 32),
    (ElfClass.ELF32, ElfData.MSB, ElfMachine.PPC, 32),
    (ElfClass.ELF64, ElfData.MSB, ElfMachine.PPC64, 64),
    (ElfClass.ELF64, ElfData.LSB, ElfMachine.IA_64, 64),
    (ElfClass.ELF64, ElfData.MSB, ElfMachine.SPARCV9, 64),
])
def test_class_data_machine_combinations(elf_class, data, machine, bits):
    spec = BinarySpec(machine=machine, elf_class=elf_class, data=data,
                      needed=("libc.so.6",),
                      version_requirements={"libc.so.6": ("GLIBC_2.3",)})
    info = describe_elf(write_elf(spec))
    assert info.machine is machine
    assert info.bits == bits
    assert info.endianness is data
    assert info.needed == ("libc.so.6",)
    assert info.required_glibc is not None
    assert info.required_glibc.name == "GLIBC_2.3"


def test_static_binary_has_no_dynamic_section():
    info = describe_elf(write_elf(BinarySpec(statically_linked=True)))
    assert not info.is_dynamic
    assert info.needed == ()


def test_static_with_needed_rejected():
    with pytest.raises(ValueError):
        BinarySpec(statically_linked=True, needed=("libc.so.6",))


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        BinarySpec(payload_size=-1)


def test_payload_size_grows_image():
    small = write_elf(BinarySpec(payload_size=100))
    large = write_elf(BinarySpec(payload_size=100_000))
    assert len(large) - len(small) >= 99_000


def test_payload_is_deterministic():
    spec = BinarySpec(needed=("libc.so.6",), payload_size=5000)
    assert write_elf(spec) == write_elf(spec)


def test_payload_seed_changes_bytes_only():
    a = describe_elf(write_elf(BinarySpec(needed=("libc.so.6",),
                                          payload_seed="siteA")))
    b_img = write_elf(BinarySpec(needed=("libc.so.6",), payload_seed="siteB"))
    b = describe_elf(b_img)
    assert a.needed == b.needed
    assert write_elf(BinarySpec(needed=("libc.so.6",),
                                payload_seed="siteA")) != b_img


def test_dynamic_section_terminated_with_null():
    elf = parse_elf(write_elf(BinarySpec(needed=("libc.so.6",))))
    tags = [e.tag for e in elf.dynamic.entries]
    assert DynamicTag.NULL not in tags  # NULL terminates, isn't included
    assert DynamicTag.NEEDED in tags
    assert DynamicTag.STRTAB in tags


def test_sections_have_expected_names():
    elf = parse_elf(write_elf(BinarySpec(
        needed=("libc.so.6",),
        version_requirements={"libc.so.6": ("GLIBC_2.0",)},
        comment=("test",))))
    names = {s.name for s in elf.sections}
    assert {".text", ".dynstr", ".dynamic", ".gnu.version_r",
            ".comment", ".shstrtab"} <= names


def test_shstrtab_is_strtab_type():
    elf = parse_elf(write_elf(BinarySpec()))
    shstrtab = elf.section(".shstrtab")
    assert shstrtab is not None
    assert shstrtab.sh_type == SectionType.STRTAB


def test_truncated_image_raises():
    image = write_elf(BinarySpec(needed=("libc.so.6",)))
    with pytest.raises(ElfError):
        parse_elf(image[:30])


def test_garbage_rejected():
    with pytest.raises(ElfError):
        parse_elf(b"\x00" * 200)
    with pytest.raises(ElfError):
        parse_elf(b"not an elf at all")


def test_detach_preserves_parsed_fields():
    elf = parse_elf(write_elf(BinarySpec(
        needed=("libm.so.6", "libc.so.6"), comment=("banner",))))
    size = elf.size
    elf.detach()
    assert elf.data == b""
    assert elf.size == size
    assert elf.dynamic.needed == ("libm.so.6", "libc.so.6")
    assert elf.comment == ("banner",)
