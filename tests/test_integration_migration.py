"""End-to-end migration scenarios across the paper's five sites.

Each scenario reproduces one mechanism from the paper's Section VI.C
failure taxonomy and checks that FEAM's prediction agrees with the ground
truth the simulated runtime produces.
"""

import pytest

from repro.core import Feam
from repro.sites.catalog import build_paper_sites
from repro.toolchain.compilers import Language


@pytest.fixture(scope="module")
def world():
    """A fresh five-site world plus a FEAM instance (module-scoped)."""
    sites = build_paper_sites(424242, cached=False)
    return {s.name: s for s in sites}, Feam()


def _build(site, stack_slug, name, language=Language.FORTRAN,
           glibc_ceiling=(2, 3), payload=200_000):
    stack = site.find_stack(stack_slug)
    app = site.compile_mpi_program(name, language, stack,
                                   glibc_ceiling=glibc_ceiling,
                                   payload_size=payload)
    path = f"/home/user/{name}"
    site.machine.fs.write(path, app.image, mode=0o755)
    return stack, app, path


def _migrate(feam, source, target, app, path, stack, tag):
    bundle = feam.run_source_phase(source, path,
                                   env=source.env_with_stack(stack))
    target_path = f"/home/user/migrated-{tag}"
    target.machine.fs.write(target_path, app.image, mode=0o755)
    basic = feam.run_target_phase(target, binary_path=target_path,
                                  staging_tag=f"{tag}-basic")
    extended = feam.run_target_phase(target, binary_path=target_path,
                                     bundle=bundle, staging_tag=f"{tag}-ext")
    return basic, extended


def _actual(target, app, stack_slug, env=None, provenance=None):
    stack = target.find_stack(stack_slug)
    return target.run_with_retries(
        "actual", app.image, stack,
        env=env if env is not None else target.env_with_stack(stack),
        provenance=provenance)


def test_intel_cross_version_migration(world):
    """fir (Intel 12, Open MPI 1.4) binary -> ranger (Intel 10.1, Open
    MPI 1.3): the Intel runtime sonames span releases so nothing is
    missing, but the Open MPI 1.4-vs-1.3 pairing carries ABI risk that
    only the extended prediction (imported hello-world) can see.  The
    extended verdict must match the actual run; basic can be wrong."""
    sites, feam = world
    fir, ranger = sites["fir"], sites["ranger"]
    stack, app, path = _build(fir, "openmpi-1.4-intel", "i-app")
    basic, extended = _migrate(feam, fir, ranger, app, path, stack, "i1")
    assert basic.prediction.missing_libraries == ()
    if extended.selected_stack_prefix is not None:
        stack_after = ranger.stack_by_prefix(extended.selected_stack_prefix)
        env = extended.run_environment or ranger.env_with_stack(stack_after)
        after = ranger.run_with_retries("after", app.image, stack_after,
                                        env=env)
        assert after.ok == extended.ready
    else:
        assert not extended.ready


def test_forge_built_binary_fails_on_older_libc(world):
    """forge (glibc 2.12) binary with 2.7-era interfaces -> india (2.5):
    predicted and actual C-library failure; resolution cannot help."""
    sites, feam = world
    forge, india = sites["forge"], sites["india"]
    stack, app, path = _build(forge, "openmpi-1.4-gnu", "libc-app",
                              language=Language.C, glibc_ceiling=(2, 7))
    basic, extended = _migrate(feam, forge, india, app, path, stack, "l1")
    assert not basic.ready
    assert not extended.ready
    result = _actual(india, app, "openmpi-1.4-gnu")
    assert not result.ok
    assert result.failure.kind.value == "c-library-version"


def test_mvapich_soname_change_resolved_by_copies(world):
    """ranger MVAPICH2 1.2 binary -> india 1.7a2: libmpich.so.1.0 is
    missing (soname changed); the ranger copies are glibc-2.3.4-built and
    stage cleanly."""
    sites, feam = world
    ranger, india = sites["ranger"], sites["india"]
    stack, app, path = _build(ranger, "mvapich2-1.2-gnu", "mv-app",
                              language=Language.C)
    basic, extended = _migrate(feam, ranger, india, app, path, stack, "m1")
    assert not basic.ready  # missing libmpich.so.1.0, no resolution
    assert "libmpich.so.1.0" in basic.prediction.missing_libraries
    if extended.ready:
        after = india.run_with_retries(
            "after", app.image,
            india.stack_by_prefix(extended.selected_stack_prefix),
            env=extended.run_environment)
        assert after.ok == extended.ready


def test_gfortran3_unresolvable_on_old_sites(world):
    """blacklight (gcc 4.4) Fortran binary -> fir: libgfortran.so.3 is
    missing and the copy requires GLIBC_2.7 > fir's 2.5 -- the paper's
    'copies required incompatible C library versions'."""
    sites, feam = world
    blacklight, fir = sites["blacklight"], sites["fir"]
    stack, app, path = _build(blacklight, "openmpi-1.4-gnu", "gf-app")
    basic, extended = _migrate(feam, blacklight, fir, app, path, stack, "g1")
    assert not basic.ready
    assert not extended.ready
    assert extended.resolution is not None
    unresolved = {d.soname for d in extended.resolution.unresolved}
    assert "libgfortran.so.3" in unresolved
    result = _actual(fir, app, "openmpi-1.4-gnu")
    assert not result.ok
    assert result.failure.kind.value == "missing-shared-library"


def test_g77_binary_runs_everywhere_via_compat(world):
    """ranger g77 binary -> forge: the compat-libf2c package provides
    libg2c.so.0, so the migration loads (ABI pair risk aside)."""
    sites, feam = world
    ranger, forge = sites["ranger"], sites["forge"]
    stack, app, path = _build(ranger, "openmpi-1.3-gnu", "g77-app")
    basic, extended = _migrate(feam, ranger, forge, app, path, stack, "c1")
    assert "libg2c.so.0" not in basic.prediction.missing_libraries
    # Extended prediction matches actual execution (ABI pair draws and
    # all): run with FEAM's configuration when it selected one.
    if extended.selected_stack_prefix is not None:
        stack_after = forge.stack_by_prefix(extended.selected_stack_prefix)
        env = extended.run_environment or forge.env_with_stack(stack_after)
        result = forge.run_with_retries("after", app.image, stack_after,
                                        env=env)
        assert result.ok == extended.ready


def test_cxx_glibcxx_version_failure_predicted(world):
    """forge (gcc 4.4.5) C++ binary -> india (gcc 4.1.2 libstdc++):
    GLIBCXX_3.4.13 reference is unsatisfied -- detected via ldd -v."""
    sites, feam = world
    forge, india = sites["forge"], sites["india"]
    stack, app, path = _build(forge, "openmpi-1.4-gnu", "cxx-app",
                              language=Language.CXX, glibc_ceiling=(2, 4))
    basic, _extended = _migrate(feam, forge, india, app, path, stack, "x1")
    assert not basic.ready
    unsatisfied = dict(basic.prediction.unsatisfied_versions)
    assert unsatisfied.get("libstdc++.so.6") == "GLIBCXX_3.4.13"
    result = _actual(india, app, "openmpi-1.4-gnu")
    assert not result.ok


def test_basic_and_extended_agree_on_clean_migration(world):
    """india -> fir with identical stacks and C libraries: both modes
    predict ready and the binary runs."""
    sites, feam = world
    india, fir = sites["india"], sites["fir"]
    stack, app, path = _build(india, "openmpi-1.4-gnu", "clean-app",
                              language=Language.C)
    basic, extended = _migrate(feam, india, fir, app, path, stack, "ok1")
    assert basic.ready
    assert extended.ready
    result = _actual(fir, app, "openmpi-1.4-gnu")
    assert result.ok
