"""Flame profiles, critical paths and trace diffs (repro.obs.analyze).

Uses hand-built span lists with exact timings, so total/self
arithmetic, path selection and delta ordering are checked against
known answers; the JSONL round-trip test ties the module to the traces
``feam matrix --trace-out`` actually emits.
"""

import pytest

from repro import obs
from repro.obs import analyze
from repro.obs.tracer import Span


def _span(name, span_id, parent_id=None, wall=0.0, sim=0.0,
          status="ok", start=0.0):
    return Span(name=name, span_id=span_id, parent_id=parent_id,
                attrs={}, start_wall=start, wall_seconds=wall,
                sim_seconds=sim, status=status)


@pytest.fixture
def matrix_like_spans():
    """matrix(0.100s) > site(0.080s) > 2x cell(0.030s each)."""
    return [
        _span("engine.matrix", 1, wall=0.100, sim=50.0, start=0.0),
        _span("engine.site", 2, parent_id=1, wall=0.080, sim=50.0,
              start=0.01),
        _span("engine.cell", 3, parent_id=2, wall=0.030, sim=25.0,
              start=0.02),
        _span("engine.cell", 4, parent_id=2, wall=0.030, sim=25.0,
              start=0.05, status="error"),
    ]


class TestProfile:
    def test_total_and_self_time(self, matrix_like_spans):
        prof = analyze.profile(matrix_like_spans)
        assert prof.span_count == 4
        matrix = prof.frame("engine.matrix")
        site = prof.frame("engine.site")
        cell = prof.frame("engine.cell")
        assert matrix.count == 1 and site.count == 1 and cell.count == 2
        assert matrix.wall_total == pytest.approx(0.100)
        # self = own duration minus direct children.
        assert matrix.wall_self == pytest.approx(0.100 - 0.080)
        assert site.wall_self == pytest.approx(0.080 - 0.060)
        assert cell.wall_self == pytest.approx(0.060)  # leaves keep all
        assert site.sim_self == pytest.approx(0.0)  # 50 - 25 - 25
        assert cell.errors == 1

    def test_self_time_clamped_at_zero(self):
        # Concurrent children can sum past the parent (threaded sites).
        spans = [
            _span("parent", 1, wall=0.010),
            _span("child", 2, parent_id=1, wall=0.008),
            _span("child", 3, parent_id=1, wall=0.008),
        ]
        prof = analyze.profile(spans)
        assert prof.frame("parent").wall_self == 0.0

    def test_orphan_parent_ids_count_as_roots(self):
        prof = analyze.profile([_span("x", 5, parent_id=999, wall=0.01)])
        assert prof.frame("x").wall_self == pytest.approx(0.01)

    def test_unfinished_span_wall_is_zero(self):
        span = _span("open", 1)
        span.wall_seconds = None
        prof = analyze.profile([span])
        assert prof.frame("open").wall_total == 0.0

    def test_sorted_frames_and_unknown_key(self, matrix_like_spans):
        prof = analyze.profile(matrix_like_spans)
        names = [f.name for f in prof.sorted_frames("count")]
        assert names[0] == "engine.cell"
        with pytest.raises(ValueError, match="unknown sort key"):
            prof.sorted_frames("bogus")

    def test_to_dict_roundtrip(self, matrix_like_spans):
        prof = analyze.profile(matrix_like_spans)
        clone = analyze.profile_from_dict(prof.to_dict())
        assert clone.span_count == prof.span_count
        assert set(clone.frames) == set(prof.frames)
        assert clone.frame("engine.site").wall_self == pytest.approx(
            prof.frame("engine.site").wall_self)


class TestCriticalPath:
    def test_descends_heaviest_chain(self, matrix_like_spans):
        path = analyze.critical_path(matrix_like_spans)
        assert [s.name for s in path] == [
            "engine.matrix", "engine.site", "engine.cell"]
        # Ties on wall broken deterministically; first cell (id 3) wins
        # via max() keeping the first maximal element.
        assert path[-1].span_id == 3

    def test_sim_clock_can_pick_other_root(self):
        spans = [
            _span("wall-heavy", 1, wall=1.0, sim=1.0),
            _span("sim-heavy", 2, wall=0.1, sim=100.0),
        ]
        assert analyze.critical_path(spans)[0].name == "wall-heavy"
        assert analyze.critical_path(spans, clock="sim")[0].name \
            == "sim-heavy"

    def test_empty_and_bad_clock(self):
        assert analyze.critical_path([]) == []
        with pytest.raises(ValueError, match="unknown clock"):
            analyze.critical_path([], clock="lamport")


class TestDiff:
    def test_added_removed_and_ratio(self):
        base = analyze.profile([_span("kept", 1, wall=0.010),
                                _span("gone", 2, wall=0.005)])
        curr = analyze.profile([_span("kept", 1, wall=0.030),
                                _span("new", 2, wall=0.001)])
        deltas = {d.name: d for d in analyze.diff_profiles(base, curr)}
        assert deltas["kept"].status == "common"
        assert deltas["kept"].wall_ratio == pytest.approx(3.0)
        assert deltas["kept"].wall_delta == pytest.approx(0.020)
        assert deltas["gone"].status == "removed"
        assert deltas["gone"].wall_delta == pytest.approx(-0.005)
        assert deltas["new"].status == "added"
        assert deltas["new"].wall_ratio is None

    def test_sorted_by_absolute_wall_delta(self):
        base = analyze.profile([_span("a", 1, wall=0.001),
                                _span("b", 2, wall=0.100)])
        curr = analyze.profile([_span("a", 1, wall=0.002),
                                _span("b", 2, wall=0.010)])
        deltas = analyze.diff_profiles(base, curr)
        assert deltas[0].name == "b"  # |-0.090| > |+0.001|

    def test_zero_baseline_ratio_is_none(self):
        base = analyze.profile([_span("a", 1, wall=0.0)])
        curr = analyze.profile([_span("a", 1, wall=1.0)])
        (delta,) = analyze.diff_profiles(base, curr)
        assert delta.wall_ratio is None


class TestRendering:
    def test_render_top_includes_every_column(self, matrix_like_spans):
        text = analyze.render_top(analyze.profile(matrix_like_spans))
        assert "engine.cell" in text
        assert "wall self" in text and "sim total" in text
        assert "4 spans" in text

    def test_render_empty(self):
        assert analyze.render_top(analyze.profile([])) == "(no spans)"
        assert analyze.render_critical_path([]) == "(empty trace)"
        assert analyze.render_diff([]) == "(no spans in either trace)"

    def test_render_diff_marks_added_and_gone(self):
        base = analyze.profile([_span("gone", 1, wall=0.01)])
        curr = analyze.profile([_span("new", 1, wall=0.01)])
        text = analyze.render_diff(analyze.diff_profiles(base, curr))
        assert "[new]" in text and "[gone]" in text


class TestJsonlIntegration:
    def test_profile_from_emitted_trace(self, tmp_path):
        with obs.capture() as collector:
            with obs.span("outer"):
                with obs.span("inner") as sp:
                    sp.add_sim_seconds(3.0)
        path = tmp_path / "trace.jsonl"
        obs.export.write_jsonl(str(path), collector)
        spans = analyze.spans_from_jsonl_file(str(path))
        prof = analyze.profile(spans)
        assert prof.frame("inner").sim_total == pytest.approx(3.0)
        assert prof.frame("outer").count == 1
        names = [s.name for s in analyze.critical_path(spans)]
        assert names == ["outer", "inner"]
