"""Metric computations over synthetic migration records."""

import pytest

from repro.corpus.benchmarks import Suite
from repro.evaluation.experiment import MigrationRecord
from repro.evaluation.metrics import (
    accuracy,
    accuracy_table,
    failure_breakdown,
    missing_library_share,
    resolution_increase,
    resolution_table,
    success_rate,
)


def record(suite=Suite.NPB, basic=True, extended=True, before=True,
           after=True, before_failure=None, after_failure=None):
    return MigrationRecord(
        binary_id="b", suite=suite, benchmark="nas.bt",
        build_site="a", build_stack="openmpi-1.4-gnu", target_site="b",
        naive_stack="openmpi-1.4-gnu",
        basic_ready=basic, extended_ready=extended,
        actual_before_ok=before, actual_before_failure=before_failure,
        actual_after_ok=after, actual_after_failure=after_failure,
        feam_stack="openmpi-1.4-gnu")


def test_accuracy_counts_matches():
    records = [
        record(basic=True, before=True),    # correct
        record(basic=True, before=False),   # wrong
        record(basic=False, before=False),  # correct
        record(basic=False, before=True),   # wrong
    ]
    assert accuracy(records, "basic") == 0.5


def test_accuracy_extended_uses_after():
    records = [record(extended=True, after=False),
               record(extended=False, after=False)]
    assert accuracy(records, "extended") == 0.5


def test_accuracy_unknown_mode():
    with pytest.raises(ValueError):
        accuracy([record()], "psychic")


def test_accuracy_empty_is_none():
    assert accuracy([], "basic") is None


def test_success_rates():
    records = [record(before=True, after=True),
               record(before=False, after=True),
               record(before=False, after=False)]
    assert success_rate(records, "before") == pytest.approx(1 / 3)
    assert success_rate(records, "after") == pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        success_rate(records, "someday")


def test_resolution_increase():
    records = [record(before=True, after=True)] * 3 + \
        [record(before=False, after=True)]
    assert resolution_increase(records) == pytest.approx(1 / 3)


def test_resolution_increase_zero_base():
    assert resolution_increase([record(before=False, after=True)]) is None


def test_tables_partition_by_suite():
    records = [record(suite=Suite.NPB, basic=True, before=True),
               record(suite=Suite.SPEC, basic=True, before=False)]
    acc = accuracy_table(records)
    assert acc[Suite.NPB]["basic"] == 1.0
    assert acc[Suite.SPEC]["basic"] == 0.0
    res = resolution_table(records)
    assert res[Suite.NPB]["before"] == 1.0
    assert res[Suite.SPEC]["before"] == 0.0


def test_failure_breakdown():
    records = [
        record(before=False, before_failure="missing-shared-library"),
        record(before=False, before_failure="missing-shared-library"),
        record(before=False, before_failure="system-error"),
        record(before=True),
    ]
    breakdown = failure_breakdown(records, "before")
    assert breakdown["missing-shared-library"] == 2
    assert breakdown["system-error"] == 1
    assert sum(breakdown.values()) == 3


def test_missing_library_share():
    records = [
        record(before=False, before_failure="missing-shared-library"),
        record(before=False, before_failure="c-library-version"),
    ]
    assert missing_library_share(records) == 0.5
    assert missing_library_share([record(before=True)]) is None


def test_record_helper_properties():
    helped = record(before=False, after=True)
    assert helped.resolution_helped
    assert not record(before=True, after=True).resolution_helped
    assert record(basic=True, before=True).basic_correct
    assert not record(extended=True, after=False).extended_correct
