"""Site self-diagnosis over the catalog and broken configurations."""

import pytest

from repro.sites.doctor import diagnose_site, errors


def test_paper_sites_are_healthy(paper_sites):
    """Catalog regression guard: every Table II site passes every check
    (intentional states surface only as notes)."""
    for site in paper_sites:
        findings = diagnose_site(site)
        assert errors(findings) == [], (site.name, findings)


def test_fir_misconfiguration_noted(paper_sites_by_name):
    findings = diagnose_site(paper_sites_by_name["fir"])
    notes = [f for f in findings if f.severity == "note"]
    assert any("mpich2-1.3-pgi" in f.detail for f in notes)


def test_mini_site_healthy(mini_site):
    assert errors(diagnose_site(mini_site)) == []


def test_stale_ldconfig_detected(make_site):
    site = make_site("stale")
    from repro.toolchain.products import LibraryProduct
    LibraryProduct("libextra.so.1", size=500).install(
        site.machine.fs, "/usr/lib64", site.libc)
    findings = errors(diagnose_site(site))
    assert any(f.check == "ldconfig" for f in findings)


def test_missing_modulefile_detected(make_site):
    site = make_site("nomod")
    site.machine.fs.remove(
        "/usr/share/Modules/modulefiles/openmpi/1.4-intel")
    findings = errors(diagnose_site(site))
    assert any(f.check == "modulefile" for f in findings)
    assert any(f.check == "stack-environment" for f in findings)


def test_deleted_library_detected(make_site):
    site = make_site("broken-lib")
    stack = site.find_stack("openmpi-1.4-gnu")
    site.machine.fs.remove(stack.libdir + "/libmpi.so.0")
    site.machine.fs.remove(stack.libdir + "/libmpi.so.0.1.4")
    findings = errors(diagnose_site(site))
    assert any(f.check == "stack-resolution"
               and "libmpi.so.0" in f.detail for f in findings)


def test_missing_launcher_detected(make_site):
    site = make_site("no-launcher")
    stack = site.find_stack("openmpi-1.4-intel")
    site.machine.fs.remove(stack.mpiexec_path)
    findings = errors(diagnose_site(site))
    assert any(f.check == "launcher" and "mpiexec" in f.detail
               for f in findings)


def test_compute_divergence_noted(make_site):
    site = make_site("diverged-note",
                     compute_node_missing=("/usr/lib64/libz.so.1",))
    findings = diagnose_site(site)
    assert any(f.check == "compute-divergence" for f in findings)
    assert errors(findings) == []  # divergence is a note, not an error


def test_finding_str():
    from repro.sites.doctor import Finding
    text = str(Finding("error", "libc", "gone"))
    assert text == "[error] libc: gone"
