"""Dynamic loader simulation tests."""

import pytest

from repro.elf import BinarySpec, write_elf
from repro.elf.constants import ElfClass, ElfMachine, ElfType
from repro.sysmodel.distro import CENTOS_5_6
from repro.sysmodel.env import Environment
from repro.sysmodel.errors import FailureKind
from repro.sysmodel.loader import read_ld_so_conf
from repro.sysmodel.machine import Machine


def lib_image(soname, needed=(), verdefs=(), verneed=None,
              machine=ElfMachine.X86_64, elf_class=ElfClass.ELF64):
    return write_elf(BinarySpec(
        machine=machine, elf_class=elf_class, etype=ElfType.DYN,
        soname=soname, needed=tuple(needed),
        version_definitions=tuple(verdefs),
        version_requirements=verneed or {},
        payload_size=64))


def app_image(needed, verneed=None, machine=ElfMachine.X86_64,
              elf_class=ElfClass.ELF64, rpath=None):
    return write_elf(BinarySpec(
        machine=machine, elf_class=elf_class, etype=ElfType.EXEC,
        needed=tuple(needed), version_requirements=verneed or {},
        rpath=rpath, payload_size=64))


@pytest.fixture
def machine():
    m = Machine("testhost", "x86_64", CENTOS_5_6)
    m.fs.write("/lib64/libc.so.6", lib_image(
        "libc.so.6", verdefs=("libc.so.6", "GLIBC_2.0", "GLIBC_2.5")),
        mode=0o755)
    return m


def test_resolves_from_trusted_dir(machine):
    report = machine.loader.resolve(app_image(["libc.so.6"]), machine.env)
    assert report.ok
    assert report.entries[0].path == "/lib64/libc.so.6"


def test_missing_library_reported(machine):
    report = machine.loader.resolve(
        app_image(["libmissing.so.1", "libc.so.6"]), machine.env)
    assert not report.ok
    assert report.missing_sonames == ["libmissing.so.1"]
    assert report.first_failure_kind() is FailureKind.MISSING_LIBRARY


def test_ld_library_path_precedes_trusted(machine):
    machine.fs.write("/custom/libc.so.6", lib_image(
        "libc.so.6", verdefs=("libc.so.6", "GLIBC_2.0", "GLIBC_2.5")),
        mode=0o755)
    env = Environment({"LD_LIBRARY_PATH": "/custom"})
    report = machine.loader.resolve(app_image(["libc.so.6"]), env)
    assert report.entries[0].path == "/custom/libc.so.6"


def test_rpath_precedes_ld_library_path(machine):
    machine.fs.write("/rp/libx.so.1", lib_image("libx.so.1"), mode=0o755)
    machine.fs.write("/llp/libx.so.1", lib_image("libx.so.1"), mode=0o755)
    env = Environment({"LD_LIBRARY_PATH": "/llp"})
    report = machine.loader.resolve(
        app_image(["libx.so.1", "libc.so.6"], rpath="/rp"), env)
    assert report.entries[0].path == "/rp/libx.so.1"


def test_recursive_dependency_resolution(machine):
    machine.fs.write("/usr/lib64/libb.so.1", lib_image("libb.so.1"),
                     mode=0o755)
    machine.fs.write("/usr/lib64/liba.so.1",
                     lib_image("liba.so.1", needed=["libb.so.1"]),
                     mode=0o755)
    report = machine.loader.resolve(
        app_image(["liba.so.1", "libc.so.6"]), machine.env)
    assert report.ok
    resolved = {e.soname: e.path for e in report.entries}
    assert resolved["libb.so.1"] == "/usr/lib64/libb.so.1"
    # The recursive requirement records who asked for it.
    b_entry = next(e for e in report.entries if e.soname == "libb.so.1")
    assert b_entry.requested_by == "/usr/lib64/liba.so.1"


def test_missing_transitive_dependency(machine):
    machine.fs.write("/usr/lib64/liba.so.1",
                     lib_image("liba.so.1", needed=["libgone.so.9"]),
                     mode=0o755)
    report = machine.loader.resolve(
        app_image(["liba.so.1", "libc.so.6"]), machine.env)
    assert report.missing_sonames == ["libgone.so.9"]


def test_version_satisfied(machine):
    report = machine.loader.resolve(
        app_image(["libc.so.6"],
                  verneed={"libc.so.6": ("GLIBC_2.0", "GLIBC_2.5")}),
        machine.env)
    assert report.ok


def test_version_not_found_is_libc_failure(machine):
    report = machine.loader.resolve(
        app_image(["libc.so.6"], verneed={"libc.so.6": ("GLIBC_2.7",)}),
        machine.env)
    assert not report.ok
    assert report.first_failure_kind() is FailureKind.LIBC_VERSION
    err = report.version_errors[0]
    assert err.version == "GLIBC_2.7"
    assert "GLIBC_2.7" in err.message()


def test_non_glibc_version_error_is_abi_failure(machine):
    machine.fs.write("/usr/lib64/libstdc++.so.6", lib_image(
        "libstdc++.so.6", verdefs=("libstdc++.so.6", "GLIBCXX_3.4")),
        mode=0o755)
    report = machine.loader.resolve(
        app_image(["libstdc++.so.6", "libc.so.6"],
                  verneed={"libstdc++.so.6": ("GLIBCXX_3.4.9",)}),
        machine.env)
    assert report.first_failure_kind() is FailureKind.ABI_MISMATCH


def test_wrong_arch_library_skipped(machine):
    # A 32-bit library earlier in the path must not shadow the 64-bit one.
    machine.fs.write("/lib32first/libw.so.1", lib_image(
        "libw.so.1", machine=ElfMachine.X86, elf_class=ElfClass.ELF32),
        mode=0o755)
    machine.fs.write("/usr/lib64/libw.so.1", lib_image("libw.so.1"),
                     mode=0o755)
    env = Environment({"LD_LIBRARY_PATH": "/lib32first"})
    report = machine.loader.resolve(
        app_image(["libw.so.1", "libc.so.6"]), env)
    entry = next(e for e in report.entries if e.soname == "libw.so.1")
    assert entry.path == "/usr/lib64/libw.so.1"
    assert "/lib32first" in entry.arch_skipped


def test_symlinked_soname_resolves_to_real_file(machine):
    machine.fs.write("/usr/lib64/libv.so.1.0.0", lib_image("libv.so.1"),
                     mode=0o755)
    machine.fs.symlink("/usr/lib64/libv.so.1", "libv.so.1.0.0")
    report = machine.loader.resolve(
        app_image(["libv.so.1", "libc.so.6"]), machine.env)
    entry = next(e for e in report.entries if e.soname == "libv.so.1")
    assert entry.path == "/usr/lib64/libv.so.1.0.0"


def test_static_binary_resolves_trivially(machine):
    static = write_elf(BinarySpec(statically_linked=True))
    report = machine.loader.resolve(static, machine.env)
    assert report.ok
    assert report.entries == []


def test_dependency_cycle_terminates(machine):
    machine.fs.write("/usr/lib64/libp.so.1",
                     lib_image("libp.so.1", needed=["libq.so.1"]),
                     mode=0o755)
    machine.fs.write("/usr/lib64/libq.so.1",
                     lib_image("libq.so.1", needed=["libp.so.1"]),
                     mode=0o755)
    report = machine.loader.resolve(
        app_image(["libp.so.1", "libc.so.6"]), machine.env)
    assert report.ok


def test_ld_so_conf_extra_dirs(machine):
    machine.fs.write_text("/etc/ld.so.conf",
                          "include /etc/ld.so.conf.d/*.conf\n")
    machine.fs.write_text("/etc/ld.so.conf.d/custom.conf", "/srv/libs\n")
    machine.fs.write("/srv/libs/libextra.so.2", lib_image("libextra.so.2"),
                     mode=0o755)
    assert read_ld_so_conf(machine.fs) == ["/srv/libs"]
    report = machine.loader.resolve(
        app_image(["libextra.so.2", "libc.so.6"]), machine.env)
    assert report.ok


def test_verneed_for_unloaded_file_ignored(machine):
    # A verneed whose file never loads is not checked (real ld.so
    # behaviour: only loaded objects' definitions are consulted).
    report = machine.loader.resolve(
        app_image(["libc.so.6"], verneed={"libghost.so.1": ("V_1.0",)}),
        machine.env)
    assert report.ok
