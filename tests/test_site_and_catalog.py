"""Site assembly and the Table II catalog."""

import pytest

from repro.elf import describe_elf
from repro.mpi.implementations import MpiImplementationKind
from repro.sites.catalog import PAPER_SITE_SPECS, site_spec
from repro.toolchain.compilers import Language


class TestSiteAssembly:
    def test_libc_installed(self, mini_site):
        fs = mini_site.machine.fs
        assert fs.is_symlink("/lib64/libc.so.6")
        info = describe_elf(fs.read("/lib64/libc.so.6"))
        assert "GLIBC_2.5" in info.version_definitions

    def test_system_compiler_runtimes_on_loader_path(self, mini_site):
        assert mini_site.machine.fs.is_file("/usr/lib64/libgcc_s.so.1")
        assert mini_site.machine.fs.is_file("/usr/lib64/libgfortran.so.1")

    def test_vendor_compiler_under_opt(self, mini_site):
        fs = mini_site.machine.fs
        assert fs.is_file("/opt/intel-11.1/bin/icc")
        assert fs.is_file("/opt/intel-11.1/lib/libimf.so")

    def test_ib_libraries_present(self, mini_site):
        assert mini_site.machine.fs.is_file("/usr/lib64/libibverbs.so.1")

    def test_module_files_written(self, mini_site):
        assert mini_site.modules is not None
        assert mini_site.modules.avail() == [
            "openmpi/1.4-gnu", "openmpi/1.4-intel"]

    def test_env_with_stack(self, mini_site):
        stack = mini_site.find_stack("openmpi-1.4-intel")
        env = mini_site.env_with_stack(stack)
        assert "/opt/openmpi-1.4-intel/bin" in env.path
        assert "/opt/openmpi-1.4-intel/lib" in env.ld_library_path
        assert "/opt/intel-11.1/lib" in env.ld_library_path

    def test_stacks_of_kind(self, mini_site):
        stacks = mini_site.stacks_of_kind(MpiImplementationKind.OPEN_MPI)
        assert len(stacks) == 2
        assert mini_site.stacks_of_kind(MpiImplementationKind.MPICH2) == []

    def test_find_stack_unknown(self, mini_site):
        with pytest.raises(KeyError):
            mini_site.find_stack("missing-stack")

    def test_stack_by_prefix(self, mini_site):
        stack = mini_site.find_stack("openmpi-1.4-gnu")
        assert mini_site.stack_by_prefix(stack.prefix) is stack
        with pytest.raises(KeyError):
            mini_site.stack_by_prefix("/opt/nothing")

    def test_compile_and_run_locally(self, mini_site):
        stack = mini_site.find_stack("openmpi-1.4-gnu")
        app = mini_site.compile_mpi_program("hello", Language.C, stack)
        result = mini_site.run_with_retries("hello", app.image, stack)
        assert result.ok

    def test_compile_with_wrapper(self, mini_site):
        stack = mini_site.find_stack("openmpi-1.4-intel")
        linked = mini_site.compile_with_wrapper(
            stack.wrapper_path("mpicc"), "probe", Language.C)
        assert "libimf.so" in linked.needed

    def test_toolbox_honours_missing_tools(self, make_site):
        from repro.tools.toolbox import ToolUnavailable
        site = make_site("notools", missing_tools=("locate", "objdump"))
        toolbox = site.toolbox()
        with pytest.raises(ToolUnavailable):
            toolbox.locate("libc.so.6")
        with pytest.raises(ToolUnavailable):
            toolbox.objdump_p("/lib64/libc.so.6")


class TestCatalog:
    def test_five_sites(self, paper_spec_names):
        assert paper_spec_names == [
            "ranger", "forge", "blacklight", "india", "fir"]

    def test_site_spec_lookup(self):
        assert site_spec("ranger").libc_version == "2.3.4"
        with pytest.raises(KeyError):
            site_spec("lonestar")

    def test_table2_row_data(self):
        by_name = {spec.name: spec for spec in PAPER_SITE_SPECS}
        assert by_name["ranger"].cores == 62_976
        assert by_name["forge"].libc_version == "2.12"
        assert by_name["blacklight"].site_type == "SMP"
        assert by_name["india"].libc_version == "2.5"
        assert len(by_name["fir"].stacks) == 9

    def test_stack_counts_match_table2(self):
        counts = {spec.name: len(spec.stacks) for spec in PAPER_SITE_SPECS}
        assert counts == {"ranger": 6, "forge": 3, "blacklight": 2,
                          "india": 6, "fir": 9}

    def test_mpi_availability_matches_paper(self, paper_sites):
        """Open MPI at 5 sites, MVAPICH2 at 4, MPICH2 at 2 (Section VI.A)."""
        availability = {kind: 0 for kind in MpiImplementationKind}
        for site in paper_sites:
            for kind in MpiImplementationKind:
                if site.stacks_of_kind(kind):
                    availability[kind] += 1
        assert availability[MpiImplementationKind.OPEN_MPI] == 5
        assert availability[MpiImplementationKind.MVAPICH2] == 4
        assert availability[MpiImplementationKind.MPICH2] == 2

    def test_paper_sites_have_expected_env_tools(self, paper_sites_by_name):
        assert paper_sites_by_name["ranger"].modules is not None
        assert paper_sites_by_name["blacklight"].softenv is not None
        fir = paper_sites_by_name["fir"]
        assert fir.modules is None and fir.softenv is None

    def test_compat_packages(self, paper_sites_by_name):
        forge = paper_sites_by_name["forge"].machine.fs
        assert forge.is_file("/usr/lib64/libgfortran.so.1")
        assert forge.is_file("/usr/lib64/libg2c.so.0")
        india = paper_sites_by_name["india"].machine.fs
        assert india.is_file("/usr/lib64/libg2c.so.0")
        ranger = paper_sites_by_name["ranger"].machine.fs
        assert not ranger.is_file("/usr/lib64/libgfortran.so.3")

    def test_ranger_is_oldest_libc(self, paper_sites):
        versions = {site.name: site.libc.version for site in paper_sites}
        assert min(versions.values()) == versions["ranger"]
