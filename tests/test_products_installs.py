"""Library products, compiler installs, and the errors taxonomy."""

import pytest

from repro.elf import describe_elf
from repro.sysmodel.errors import (
    ExecutionFailure,
    ExecutionResult,
    FailureKind,
)
from repro.sysmodel.fs import VirtualFilesystem
from repro.sysmodel.machine import Machine
from repro.sysmodel.distro import RHEL_6_1
from repro.toolchain.compilers import gnu, intel, pgi, Language
from repro.toolchain.installs import CompilerInstall
from repro.toolchain.libc import glibc
from repro.toolchain.products import LibraryProduct


class TestLibraryProduct:
    def test_install_writes_soname_symlink(self):
        fs = VirtualFilesystem()
        product = LibraryProduct("libdemo.so.2",
                                 filename="libdemo.so.2.0.1", size=1000)
        path = product.install(fs, "/usr/lib64", glibc("2.5"))
        assert path == "/usr/lib64/libdemo.so.2"
        assert fs.is_symlink(path)
        assert fs.is_file("/usr/lib64/libdemo.so.2.0.1")

    def test_glibc_requirement_capped_by_ceiling(self):
        fs = VirtualFilesystem()
        LibraryProduct("liba.so.1", glibc_ceiling=(2, 3, 4)).install(
            fs, "/usr/lib64", glibc("2.12"))
        info = describe_elf(fs.read("/usr/lib64/liba.so.1"))
        assert info.required_glibc.name == "GLIBC_2.3.4"

    def test_glibc_requirement_capped_by_site_libc(self):
        fs = VirtualFilesystem()
        LibraryProduct("libb.so.1", glibc_ceiling=(2, 7)).install(
            fs, "/usr/lib64", glibc("2.5"))
        info = describe_elf(fs.read("/usr/lib64/libb.so.1"))
        assert info.required_glibc.name == "GLIBC_2.5"

    def test_verdefs_written(self):
        fs = VirtualFilesystem()
        LibraryProduct("libf.so.3", verdefs=("F_1.0", "F_2.0")).install(
            fs, "/usr/lib64", glibc("2.5"))
        info = describe_elf(fs.read("/usr/lib64/libf.so.3"))
        assert info.version_definitions == ("libf.so.3", "F_1.0", "F_2.0")

    def test_needed_includes_libc(self):
        fs = VirtualFilesystem()
        LibraryProduct("libg.so.1", needed=("libm.so.6",)).install(
            fs, "/usr/lib64", glibc("2.5"))
        info = describe_elf(fs.read("/usr/lib64/libg.so.1"))
        assert info.needed == ("libm.so.6", "libc.so.6")

    def test_size_is_realistic(self):
        fs = VirtualFilesystem()
        LibraryProduct("libh.so.1", size=2_000_000).install(
            fs, "/usr/lib64", glibc("2.5"))
        assert fs.size("/usr/lib64/libh.so.1") > 2_000_000


class TestCompilerInstall:
    @pytest.fixture
    def machine(self):
        return Machine("host", "x86_64", RHEL_6_1)

    def test_system_gnu_layout(self, machine):
        install = CompilerInstall.system_gnu(gnu("4.4.5"))
        install.install(machine, glibc("2.12"))
        assert install.on_default_loader_path
        assert machine.fs.is_executable("/usr/bin/gcc")
        assert machine.fs.is_executable("/usr/bin/gfortran")
        assert machine.fs.is_file("/usr/lib64/libstdc++.so.6")

    def test_system_gnu_requires_gnu(self):
        with pytest.raises(ValueError):
            CompilerInstall.system_gnu(intel("12.0"))

    def test_vendor_intel_layout(self, machine):
        install = CompilerInstall.vendor(intel("12.0"))
        install.install(machine, glibc("2.12"))
        assert not install.on_default_loader_path
        assert machine.fs.is_executable("/opt/intel-12.0/bin/icc")
        assert machine.fs.is_executable("/opt/intel-12.0/bin/ifort")
        assert machine.fs.is_file("/opt/intel-12.0/lib/libimf.so")

    def test_pgi_libso_dir(self, machine):
        install = CompilerInstall.vendor(pgi("10.3"))
        install.install(machine, glibc("2.12"))
        assert install.libdir == "/opt/pgi-10.3/libso"
        assert machine.fs.is_file("/opt/pgi-10.3/libso/libpgf90.so")

    def test_driver_path(self):
        install = CompilerInstall.vendor(intel("11.1"))
        assert install.driver_path(Language.FORTRAN) == \
            "/opt/intel-11.1/bin/ifort"

    def test_driver_binaries_carry_banner(self, machine):
        install = CompilerInstall.vendor(pgi("7.2"))
        install.install(machine, glibc("2.12"))
        info = describe_elf(machine.fs.read("/opt/pgi-7.2/bin/pgcc"))
        assert any("PGI" in c for c in info.comment)


class TestErrorTaxonomy:
    def test_predictability(self):
        assert not FailureKind.SYSTEM_ERROR.predictable
        for kind in FailureKind:
            if kind is not FailureKind.SYSTEM_ERROR:
                assert kind.predictable

    def test_result_constructors(self):
        ok = ExecutionResult.success(stdout="done", elapsed_seconds=3.0)
        assert ok.ok and ok.failure is None
        bad = ExecutionResult.fail(FailureKind.MISSING_LIBRARY, "libx")
        assert not bad.ok
        assert bad.failure == ExecutionFailure(
            FailureKind.MISSING_LIBRARY, "libx")
        assert "missing-shared-library" in str(bad.failure)
