"""Effort model and migration-matrix rendering."""

import pytest

from repro.corpus.benchmarks import Suite
from repro.evaluation.effort import (
    EffortConstants,
    estimate_effort,
    render_effort,
)
from repro.evaluation.experiment import MigrationRecord


def record(binary_id="b1", build="a", target="b", suite=Suite.NPB,
           before=True, after=True, before_failure=None,
           extended_ready=True, staged=0):
    return MigrationRecord(
        binary_id=binary_id, suite=suite, benchmark="nas.bt",
        build_site=build, build_stack="openmpi-1.4-gnu",
        target_site=target, naive_stack="openmpi-1.4-gnu",
        basic_ready=True, extended_ready=extended_ready,
        actual_before_ok=before, actual_before_failure=before_failure,
        actual_after_ok=after, actual_after_failure=None,
        feam_stack="openmpi-1.4-gnu", resolution_staged=staged)


class TestEffortModel:
    def test_clean_migration_costs(self):
        constants = EffortConstants()
        estimate = estimate_effort([record()], constants)
        expected_manual = (constants.site_familiarisation
                           + constants.stack_discovery
                           + constants.submit_cycle) / 60
        assert estimate.manual_hours == pytest.approx(expected_manual)
        expected_feam = (constants.feam_write_config
                         + constants.feam_source_phase
                         + constants.feam_target_phase
                         + constants.feam_read_report
                         + constants.submit_cycle) / 60
        assert estimate.feam_hours == pytest.approx(expected_feam)

    def test_site_familiarisation_charged_once(self):
        records = [record(binary_id=f"b{i}") for i in range(5)]
        constants = EffortConstants()
        estimate = estimate_effort(records, constants)
        # One familiarisation, five discoveries + submissions.
        expected = (constants.site_familiarisation
                    + 5 * (constants.stack_discovery
                           + constants.submit_cycle)) / 60
        assert estimate.manual_hours == pytest.approx(expected)

    def test_source_phase_charged_once_per_binary(self):
        records = [record(binary_id="same", target=t)
                   for t in ("b", "c", "d")]
        constants = EffortConstants()
        estimate = estimate_effort(records, constants)
        feam_minutes = estimate.feam_hours * 60
        # 3 configs + 1 source phase + 3 (target+report+submit).
        assert feam_minutes == pytest.approx(
            3 * constants.feam_write_config
            + constants.feam_source_phase
            + 3 * (constants.feam_target_phase
                   + constants.feam_read_report
                   + constants.submit_cycle))

    def test_failures_cost_diagnosis(self):
        base = estimate_effort([record()]).manual_hours
        failed = estimate_effort(
            [record(before=False, after=False, extended_ready=False,
                    before_failure="c-library-version")]).manual_hours
        assert failed > base

    def test_manual_library_copies_charged(self):
        resolved = estimate_effort(
            [record(before=False, after=True,
                    before_failure="missing-shared-library",
                    staged=4)]).manual_hours
        unresolved = estimate_effort(
            [record(before=False, after=False, extended_ready=False,
                    before_failure="missing-shared-library")]).manual_hours
        assert resolved > unresolved

    def test_not_ready_prediction_saves_the_submission(self):
        ready = estimate_effort([record(extended_ready=True)]).feam_hours
        not_ready = estimate_effort(
            [record(extended_ready=False, before=False, after=False,
                    before_failure="c-library-version")]).feam_hours
        assert not_ready < ready

    def test_feam_saves_effort_overall(self):
        records = [record(binary_id=f"b{i}", target=t,
                          before=(i % 2 == 0), after=(i % 2 == 0),
                          before_failure=None if i % 2 == 0
                          else "missing-shared-library",
                          extended_ready=(i % 2 == 0))
                   for i, t in enumerate("bcdbcdbcd")]
        estimate = estimate_effort(records)
        assert estimate.savings_factor > 2.0

    def test_render(self):
        text = render_effort([record(), record(suite=Suite.SPEC,
                                               binary_id="b2")])
        assert "USER-EFFORT MODEL" in text
        assert "NAS" in text and "SPEC" in text
        assert "x" in text  # the savings factor column


class TestMatrixRendering:
    def test_matrix_over_reduced_experiment(self):
        from repro.corpus.builder import CorpusConfig
        from repro.evaluation.experiment import (
            ExperimentConfig,
            run_experiment,
        )
        from repro.evaluation.tables import render_site_matrix
        result = run_experiment(ExperimentConfig(
            seed=9999,
            corpus=CorpusConfig(seed=9999, target_counts={
                Suite.NPB: 10, Suite.SPEC: 10})))
        text = render_site_matrix(result)
        assert "MIGRATION MATRIX" in text
        for name in ("ranger", "forge", "blacklight", "india", "fir"):
            assert name in text
        assert "/" in text  # at least one successes/migrations cell
