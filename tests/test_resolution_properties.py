"""Property-based tests of the resolution model.

Invariants over randomly generated bundles and targets:

* a copy judged usable has a fully satisfiable dependency chain;
* everything staged came from the bundle's copies, never the C library;
* decisions are deterministic;
* when the plan says resolved_all, the loader-visible re-check passes.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core.bundle import SourceBundle
from repro.core.config import FeamConfig
from repro.core.description import BinaryDescription, LibraryRecord
from repro.core.discovery import EnvironmentDiscoveryComponent
from repro.core.resolution import ResolutionModel
from repro.elf import BinarySpec, write_elf
from repro.elf.constants import ElfType
from repro.sysmodel.distro import CENTOS_5_6
from repro.sysmodel.machine import Machine
from repro.tools.toolbox import Toolbox

_STEMS = ["aaa", "bbb", "ccc", "ddd", "eee"]


def _lib_image(soname: str, needed, glibc_req: str) -> bytes:
    return write_elf(BinarySpec(
        etype=ElfType.DYN, soname=soname, needed=tuple(needed) + ("libc.so.6",),
        version_requirements={"libc.so.6": (f"GLIBC_{glibc_req}",)},
        version_definitions=(soname,),
        payload_size=48))


def _record(soname: str, needed, glibc_req: str, copied=True) -> LibraryRecord:
    return LibraryRecord(
        soname=soname,
        located_path=f"/somewhere/{soname}",
        file_format="elf64-x86-64", isa_name="x86-64", bits=64,
        embedded_soname=soname,
        needed=tuple(needed) + ("libc.so.6",),
        version_references=(("libc.so.6", f"GLIBC_{glibc_req}"),),
        required_glibc=glibc_req,
        image=_lib_image(soname, needed, glibc_req) if copied else None)


@st.composite
def bundles(draw):
    """A random dependency forest of copied libraries."""
    count = draw(st.integers(1, 5))
    sonames = [f"lib{_STEMS[i]}.so.1" for i in range(count)]
    records = []
    for i, soname in enumerate(sonames):
        # Dependencies only on later sonames: acyclic by construction.
        deps = [s for s in sonames[i + 1:]
                if draw(st.booleans())]
        glibc_req = draw(st.sampled_from(["2.3.4", "2.5", "2.7", "2.12"]))
        copied = draw(st.booleans())
        records.append(_record(soname, deps, glibc_req, copied=copied))
    return records


def _make_world():
    machine = Machine("res-prop", "x86_64", CENTOS_5_6)
    from repro.toolchain.libc import glibc
    glibc("2.5").install(machine.fs, "/lib64")
    from repro.sysmodel.ldconfig import run_ldconfig
    run_ldconfig(machine)
    toolbox = Toolbox(machine)
    edc = EnvironmentDiscoveryComponent(toolbox)
    environment = edc.discover()
    return machine, toolbox, environment


_MACHINE, _TOOLBOX, _ENVIRONMENT = _make_world()
_COUNTER = [0]

_DESCRIPTION = BinaryDescription(
    path="/app", file_format="elf64-x86-64", isa_name="x86-64", bits=64,
    is_dynamic=True, is_shared_library=False, soname=None,
    library_version=(), needed=(), version_references=(),
    version_definitions=(), required_glibc=None, comment=(),
    mpi_implementation=None, build_compiler_hint=None,
    build_libc_hint=None, gathered_via="objdump")


def _bundle(records) -> SourceBundle:
    return SourceBundle(
        description=_DESCRIPTION, libraries=tuple(records), hello=None,
        guaranteed_environment=_ENVIRONMENT, created_at="elsewhere")


@settings(max_examples=60, deadline=None)
@given(bundles())
def test_usable_copies_have_satisfiable_chains(records):
    bundle = _bundle(records)
    resolver = ResolutionModel(_TOOLBOX, _ENVIRONMENT, FeamConfig())
    env = _MACHINE.env.copy()
    by_soname = {r.soname: r for r in records}
    for record in records:
        decision = resolver.copy_usable(record, bundle, env)
        if decision.usable:
            assert record.copied
            assert tuple(int(p) for p in record.required_glibc.split(".")) \
                <= (2, 5)
            # Every dependency is either target-present (libc) or a
            # usable copy itself.
            for dep in record.needed:
                if dep == "libc.so.6":
                    continue
                sub = resolver.copy_usable(by_soname[dep], bundle, env)
                assert sub.usable, (record.soname, dep, sub.reason)


@settings(max_examples=40, deadline=None)
@given(bundles())
def test_decisions_are_deterministic(records):
    bundle = _bundle(records)
    resolver = ResolutionModel(_TOOLBOX, _ENVIRONMENT, FeamConfig())
    env = _MACHINE.env.copy()
    for record in records:
        first = resolver.copy_usable(record, bundle, env)
        second = resolver.copy_usable(record, bundle, env)
        assert first.usable == second.usable
        assert first.reason == second.reason


@settings(max_examples=40, deadline=None)
@given(bundles())
def test_staging_invariants(records):
    bundle = _bundle(records)
    resolver = ResolutionModel(_TOOLBOX, _ENVIRONMENT, FeamConfig())
    env = _MACHINE.env.copy()
    _COUNTER[0] += 1
    staging_dir = f"/home/user/propstage/{_COUNTER[0]}"
    wanted = [r.soname for r in records]
    plan = resolver.resolve(wanted, bundle, env, staging_dir)
    copied_sonames = {r.soname for r in records if r.copied}
    fs = _MACHINE.fs
    staged_files = (set(fs.listdir(staging_dir))
                    if fs.is_dir(staging_dir) else set())
    # Only bundle copies are staged; libc never is.
    assert staged_files <= copied_sonames
    assert "libc.so.6" not in staged_files
    # Every usable decision's copy is on disk.
    for decision in plan.staged:
        assert decision.soname in staged_files
        assert decision.staged_path.startswith(staging_dir)
    if plan.resolved_all:
        for var, path in plan.env_additions:
            env.prepend_path(var, path)
        for soname in wanted:
            assert _TOOLBOX.loader_visible_library(soname, env), soname
