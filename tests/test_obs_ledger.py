"""The run ledger warehouse and the cross-run compare/drift analysis.

Everything here is synthetic-manifest unit testing (no sites, no
engine): the warehouse contract (append, evict, torn tail, schema
skew, reference resolution) and the pure compare/gate/drift functions
CI's history-gate job leans on.  The end-to-end CLI path lives in
``tests/test_history_cli.py``.
"""

import json

import pytest

from repro.obs import compare as compare_mod
from repro.obs import ledger as ledger_mod
from repro.obs import slo as slo_mod
from repro.obs.ledger import RunLedger


def manifest(kind="matrix", seed=7, sim_mean=10.0, ts=None,
             run_id=None, blocked=0, **extra):
    """A minimal but representative run manifest."""
    built = {
        "kind": kind,
        "seed": seed,
        "sites_spec": "paper",
        "rollup": {
            "cells": 10,
            "outcomes": ({"ready": 10 - blocked, "unknown": blocked}
                         if blocked else {"ready": 10}),
            "cell_outcomes": {
                f"bin@site{i}": ("unknown" if i < blocked else "ready")
                for i in range(10)},
            "determinants": {
                "glibc": {
                    "outcomes": ({"fail": blocked} if blocked
                                 else {"pass": 10}),
                    "sim": ledger_mod.latency_digest(
                        [sim_mean] * blocked),
                },
            },
            "sim": ledger_mod.latency_digest([sim_mean] * 10),
            "cache": {"hit_rate": 0.5},
            "retries": 0,
            "faulted": blocked,
        },
        "phases": {
            "cell.sim": ledger_mod.latency_digest([sim_mean] * 10),
            "discover": ledger_mod.latency_digest([0.001] * 10),
        },
    }
    if ts is not None:
        built["ts"] = ts
    if run_id is not None:
        built["run_id"] = run_id
    built.update(extra)
    return built


class TestLatencyDigest:
    def test_empty_population(self):
        digest = ledger_mod.latency_digest([])
        assert digest["count"] == 0
        assert digest["mean"] is None
        assert digest["p95"] is None

    def test_single_value_percentiles_collapse(self):
        digest = ledger_mod.latency_digest([3.5])
        assert digest == {"count": 1, "sum": 3.5, "min": 3.5,
                          "max": 3.5, "mean": 3.5, "p50": 3.5,
                          "p95": 3.5}

    def test_exact_percentiles(self):
        digest = ledger_mod.latency_digest(range(1, 101))
        assert digest["p50"] == 50
        assert digest["p95"] == 95


class TestRunLedger:
    def test_record_mints_identity(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        written = ledger.record(manifest())
        assert written["schema"] == ledger_mod.SCHEMA_VERSION
        assert written["ts"].endswith("Z")
        # Sortable stamp + 8-hex digest suffix.
        stamp, _, suffix = written["run_id"].rpartition("-")
        assert len(suffix) == 8
        assert stamp == written["ts"].replace("-", "").replace(":", "")

    def test_two_records_two_distinct_lines(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        a = ledger.record(manifest())
        b = ledger.record(manifest())
        runs = ledger.runs()
        assert [run["run_id"] for run in runs] \
            == [a["run_id"], b["run_id"]]
        assert a["run_id"] != b["run_id"]

    def test_missing_store_reads_empty(self, tmp_path):
        assert RunLedger(str(tmp_path / "nope")).runs() == []

    def test_eviction_drops_oldest(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"), max_runs=2)
        ids = [ledger.record(manifest(run_id=f"run-{i}"))["run_id"]
               for i in range(4)]
        assert [run["run_id"] for run in ledger.runs()] == ids[-2:]

    def test_torn_final_line_is_skipped(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        ledger.record(manifest(run_id="whole"))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn", "ki')
        assert [run["run_id"] for run in ledger.runs()] == ["whole"]

    def test_newer_schema_manifests_are_skipped(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        ledger.record(manifest(run_id="mine"))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"run_id": "future",
                 "schema": ledger_mod.SCHEMA_VERSION + 1}) + "\n")
        assert [run["run_id"] for run in ledger.runs()] == ["mine"]

    def test_resolve_references(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs"))
        for name in ("alpha-1", "alpha-2", "beta-1"):
            ledger.record(manifest(run_id=name))
        assert ledger.resolve("latest")["run_id"] == "beta-1"
        assert ledger.resolve("-1")["run_id"] == "beta-1"
        assert ledger.resolve("-3")["run_id"] == "alpha-1"
        assert ledger.resolve("beta")["run_id"] == "beta-1"
        assert ledger.resolve("alpha-2")["run_id"] == "alpha-2"
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.resolve("alpha")
        with pytest.raises(ValueError, match="no run matches"):
            ledger.resolve("gamma")
        with pytest.raises(ValueError, match="only holds 3"):
            ledger.resolve("-4")

    def test_resolve_on_empty_ledger(self, tmp_path):
        with pytest.raises(ValueError, match="has no runs"):
            RunLedger(str(tmp_path / "runs")).resolve("latest")


class TestFlatten:
    def test_nested_dotted_keys_and_list_lengths(self):
        flat = ledger_mod.flatten(
            {"a": {"b": {"c": 1}}, "items": [1, 2, 3], "name": "x"})
        assert flat == {"a.b.c": 1, "items": 3, "name": "x"}

    def test_numeric_metrics_exclude_bools_and_strings(self):
        nums = ledger_mod.numeric_metrics(
            {"n": 2, "f": 0.5, "flag": True, "name": "x",
             "none": None})
        assert nums == {"n": 2.0, "f": 0.5}


class TestCompareRuns:
    def test_outcome_flips_and_determinant_attribution(self):
        comparison = compare_mod.compare_runs(
            manifest(sim_mean=10.0),
            manifest(kind="chaos", sim_mean=11.0, blocked=4))
        flipped = {row["cell"] for row in comparison["flips"]}
        assert flipped == {f"bin@site{i}" for i in range(4)}
        det = {row["determinant"]: row
               for row in comparison["determinants"]}["glibc"]
        assert det["base_blocked"] == 0
        assert det["current_blocked"] == 4
        assert comparison["sim"]["ratio"] == pytest.approx(1.1)

    def test_added_and_removed_phases(self):
        base = manifest()
        curr = manifest()
        curr["phases"]["worker"] = ledger_mod.latency_digest([0.2])
        del curr["phases"]["discover"]
        status = {row["phase"]: row["status"]
                  for row in compare_mod.compare_runs(base,
                                                      curr)["phases"]}
        assert status["worker"] == "added"
        assert status["discover"] == "removed"
        assert status["cell.sim"] == "common"

    def test_bench_manifests_diff_numerically(self):
        base = {"kind": "bench", "bench": {"cold_seconds": 1.0}}
        curr = {"kind": "bench", "bench": {"cold_seconds": 2.0}}
        rows = compare_mod.compare_runs(base, curr)["bench"]
        assert rows == [{"metric": "bench.cold_seconds", "base": 1.0,
                         "current": 2.0, "ratio": 2.0}]

    def test_gate_trips_only_on_sim_rows(self):
        comparison = compare_mod.compare_runs(
            manifest(sim_mean=10.0), manifest(sim_mean=20.0))
        # Inflate a wall-clock phase far beyond the threshold: it must
        # not gate (host noise would make CI flaky), but the sim rows
        # must.
        for row in comparison["phases"]:
            if row["phase"] == "discover":
                row["ratio"] = 50.0
        rows = {entry["row"]
                for entry in compare_mod.gate(comparison, 1.5)}
        assert rows == {"sim (overall)", "phase cell.sim"}

    def test_gate_clean_on_identical_runs(self):
        comparison = compare_mod.compare_runs(manifest(), manifest())
        assert compare_mod.gate(comparison, 1.001) == []

    def test_render_mentions_the_regression(self):
        comparison = compare_mod.compare_runs(
            manifest(sim_mean=10.0), manifest(sim_mean=20.0))
        text = compare_mod.render_comparison(comparison,
                                             fail_above=1.5)
        assert "REGRESSION" in text
        assert "sim (overall): x2" in text


class TestDrift:
    def test_empty_ledger_raises(self):
        with pytest.raises(ValueError, match="at least one run"):
            compare_mod.drift([])

    def test_baseline_filters_by_kind(self):
        runs = [manifest(kind="chaos", sim_mean=50.0),
                manifest(sim_mean=10.0),
                manifest(sim_mean=10.0)]
        report = compare_mod.drift(runs, tolerance=0.25)
        assert report["kind"] == "matrix"
        assert report["baseline_runs"] == 1
        assert report["excursions"] == []

    def test_excursion_flags_the_moved_metric(self):
        runs = [manifest(sim_mean=10.0), manifest(sim_mean=20.0)]
        report = compare_mod.drift(runs, tolerance=0.25)
        moved = {entry["metric"] for entry in report["excursions"]}
        assert "rollup.sim.mean" in moved

    def test_sign_flip_ratio_does_not_crash(self):
        # A metric that crosses zero (traced_overhead does) must sort
        # as a maximal excursion, not raise a math domain error.
        runs = [{"kind": "bench", "bench": {"overhead": 0.5}},
                {"kind": "bench", "bench": {"overhead": -0.5}}]
        report = compare_mod.drift(runs, tolerance=0.1)
        assert report["excursions"][0]["metric"] == "bench.overhead"

    def test_zero_baseline_excursion(self):
        runs = [manifest(), manifest()]
        runs[0]["rollup"]["retries"] = 0
        runs[1]["rollup"]["retries"] = 7
        report = compare_mod.drift(runs, tolerance=0.25)
        entry = {e["metric"]: e for e in report["excursions"]}[
            "rollup.retries"]
        assert entry["ratio"] is None

    def test_slo_rules_evaluate_against_flat_metrics(self):
        runs = [manifest(), manifest()]
        rules = slo_mod.parse_rules("rollup.cells >= 100")
        report = compare_mod.drift(runs, rules=rules)
        assert report["slo_ok"] is False
        report = compare_mod.drift(
            runs, rules=slo_mod.parse_rules("rollup.cells >= 10"))
        assert report["slo_ok"] is True
