"""``feam alerts`` end to end, plus the chaos alert wiring.

The replay tests drive the CLI over the committed flaky-chaos fixture
(the same stream the ``alert-gate`` CI job replays) and over synthetic
clean streams; the exit-code contract is the point: 2 while anything
is firing, 0 on a quiet fleet, 1 on operational errors.  The chaos
tests assert the injected faults visibly trip alerts on stdout while
``feam chaos`` itself keeps its exit-0 observability contract.
"""

import json
import os

import pytest

from repro.__main__ import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_SLO_VIOLATION,
    feam_main,
)

FIXTURE = os.path.join(os.path.dirname(__file__), os.pardir,
                       "benchmarks", "wide_chaos_flaky.jsonl")


def _clean_stream(path, cells=20):
    """Schema-shaped wide events for a healthy uniform fleet."""
    with open(path, "w", encoding="utf-8") as handle:
        for index in range(cells):
            handle.write(json.dumps({
                "schema": 1,
                "site": f"site-{index % 5}",
                "binary": f"app-{index % 2}",
                "content_group": f"group-{index % 5}",
                "outcome": "no",
                "ready": False,
                "faulted": False,
                "sim_seconds": 10.0 + (index % 5),
                "attempts": 1,
                "retry_seconds": 0.0,
                "fault_kind": None,
                "description_hit": True,
                "discovery_hit": False,
                "evaluation_hit": False,
            }) + "\n")
    return str(path)


class TestReplayWide:
    def test_committed_fixture_fires_and_exits_2(self, capsys):
        assert os.path.exists(FIXTURE), \
            "benchmarks/wide_chaos_flaky.jsonl must stay committed"
        assert feam_main(["alerts", "--replay", FIXTURE]) \
            == EXIT_SLO_VIOLATION
        out, err = capsys.readouterr()
        assert "FIRING" in out and "[critical]" in out
        assert "faults:" in out         # per-kind injection counts
        assert "replayed 20 wide event(s)" in err

    def test_clean_stream_exits_0(self, tmp_path, capsys):
        path = _clean_stream(tmp_path / "clean.jsonl")
        assert feam_main(["alerts", "--replay", path]) == EXIT_OK
        out = capsys.readouterr().out
        assert "0 firing (0 critical)" in out

    def test_json_payload(self, capsys):
        assert feam_main(["alerts", "--replay", FIXTURE, "--json"]) \
            == EXIT_SLO_VIOLATION
        payload = json.loads(capsys.readouterr().out)
        assert payload["firing"]
        keys = {status["alert"] for status in payload["firing"]}
        assert "slo:resilience.faults.injected <= 0" in keys

    def test_timeline_appends_transitions(self, tmp_path, capsys):
        timeline = str(tmp_path / "timeline.jsonl")
        assert feam_main(["alerts", "--replay", FIXTURE,
                          "--timeline", timeline]) \
            == EXIT_SLO_VIOLATION
        err = capsys.readouterr().err
        assert "transition(s) appended" in err
        records = [json.loads(line) for line
                   in open(timeline, encoding="utf-8")]
        assert records
        assert [r["seq"] for r in records] \
            == list(range(1, len(records) + 1))
        assert any(r["to"] == "firing" for r in records)
        # Logical time only: byte-identical reruns depend on it.
        assert not any("wall" in key or "time" in key
                       for r in records for key in r)

    def test_custom_rules_file(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("matrix.cells.total > 1000 [critical]\n")
        path = _clean_stream(tmp_path / "clean.jsonl")
        assert feam_main(["alerts", "--replay", path,
                          "--rules", str(rules)]) \
            == EXIT_SLO_VIOLATION
        assert "slo:matrix.cells.total > 1000" \
            in capsys.readouterr().out

    def test_bad_burn_flag_is_operational_failure(self, capsys):
        assert feam_main(["alerts", "--replay", FIXTURE,
                          "--burn", "6:2"]) == EXIT_FAILURE

    def test_missing_replay_file_is_operational_failure(
            self, tmp_path, capsys):
        assert feam_main(["alerts", "--replay",
                          str(tmp_path / "nope.jsonl")]) \
            == EXIT_FAILURE
        assert "cannot read" in capsys.readouterr().err

    def test_empty_replay_file_is_operational_failure(
            self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert feam_main(["alerts", "--replay", str(empty)]) \
            == EXIT_FAILURE
        assert "no records" in capsys.readouterr().err


class TestReplayLedger:
    def _manifests(self, path, faults):
        with open(path, "w", encoding="utf-8") as handle:
            for index in range(3):
                handle.write(json.dumps({
                    "schema": 1,
                    "run_id": f"run-{index}",
                    "kind": "chaos" if faults else "matrix",
                    "seed": 7,
                    "rollup": {"cells": 20,
                               "faults_injected": faults,
                               "retries": 2 * faults},
                }) + "\n")
        return str(path)

    def test_faulted_manifests_fire(self, tmp_path, capsys):
        path = self._manifests(tmp_path / "runs.jsonl", faults=9)
        assert feam_main(["alerts", "--replay", path]) \
            == EXIT_SLO_VIOLATION
        out, err = capsys.readouterr()
        assert "replayed 3 ledger run(s) as 3 tick(s)" in err
        assert "slo:rollup.faults_injected <= 0" in out

    def test_clean_manifests_exit_0(self, tmp_path, capsys):
        path = self._manifests(tmp_path / "runs.jsonl", faults=0)
        assert feam_main(["alerts", "--replay", path]) == EXIT_OK


class TestLiveMode:
    def test_live_matrix_rounds_exit_0(self, capsys):
        assert feam_main(["alerts", "--binaries", "1", "--rounds",
                          "2", "--seed", "7"]) == EXIT_OK
        out, err = capsys.readouterr()
        assert "2 evaluation tick(s)" in err
        assert "0 firing (0 critical)" in out


class TestChaosWiring:
    def test_chaos_stdout_shows_firing_alerts(self, tmp_path, capsys):
        timeline = str(tmp_path / "chaos_timeline.jsonl")
        # The observability contract: injected faults degrade cells
        # and trip alerts, but `feam chaos` itself never crashes.
        # The default 4 binaries x 5 paper sites = 20 wide events =
        # two evaluation ticks, enough for the default for_ticks=2
        # to reach firing.
        assert feam_main(["chaos", "--profile", "flaky", "--seed",
                          "7", "--timeline", timeline]) == EXIT_OK
        out = capsys.readouterr().out
        assert "alerts" in out and "------" in out
        assert "FIRING" in out
        assert "faults:" in out
        records = [json.loads(line) for line
                   in open(timeline, encoding="utf-8")]
        assert any(r["to"] == "firing" for r in records)
