"""Every example script runs to completion.

``reproduce_paper.py`` is exercised by the experiment tests already (it
is a rendering of the same run), so only its imports are checked here.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "survey_sites.py",
    "resolve_missing_libraries.py",
    "custom_site.py",
    "inspect_with_tools.py",
    "describe_host_binary.py",
    "limitations.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES, script)
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_reaches_a_verdict():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "prediction:" in result.stdout
    assert ("actual execution at ranger" in result.stdout
            or "not ready at ranger" in result.stdout)


def test_survey_prints_matrix():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, "survey_sites.py")],
        capture_output=True, text=True, timeout=300)
    for site in ("ranger", "forge", "blacklight", "india", "fir"):
        assert site in result.stdout


def test_reproduce_paper_imports():
    result = subprocess.run(
        [sys.executable, "-c",
         "import importlib.util, os;"
         f"spec = importlib.util.spec_from_file_location('rp', "
         f"r'{os.path.join(EXAMPLES, 'reproduce_paper.py')}');"
         "module = importlib.util.module_from_spec(spec);"
         "spec.loader.exec_module(module);"
         "assert callable(module.main)"],
        capture_output=True, text=True, timeout=60)
    assert result.returncode == 0, result.stderr[-1000:]
