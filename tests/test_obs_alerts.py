"""The burn-rate alert engine: windows, state machine, replay, sinks.

The state-machine tests drive synthetic conditions tick by tick and
assert the full lifecycle (pending damping, firing, resolution, the
damped cancel that never pages); the replay tests fold real-shaped
wide events and ledger manifests into evaluation ticks; the
determinism tests replay the same stream twice and require identical
transition records -- the property the alert-gate CI job then holds
at the byte level.
"""

import json

import pytest

from repro import obs
from repro.obs import alerts as alerts_mod
from repro.obs import slo as slo_mod
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    BurnWindows,
    JsonlSink,
    MemorySink,
    StderrSink,
    alert_rules,
    read_timeline,
    render_alerts,
    render_timeline,
    replay_ledger,
    replay_wide,
    wide_snapshots,
)


def _snapshot(**gauges):
    return {"counters": {}, "gauges": dict(gauges), "histograms": {}}


def _rule(line, fast=1, slow=1, for_ticks=1):
    return AlertRule(slo=slo_mod.parse_rule(line),
                     windows=BurnWindows(fast=fast, slow=slow),
                     for_ticks=for_ticks)


class TestBurnWindows:
    def test_parse_two_and_three_part_forms(self):
        assert BurnWindows.parse("2:6") \
            == BurnWindows(fast=2, slow=6, slow_fraction=0.5)
        assert BurnWindows.parse("3:12:0.25") \
            == BurnWindows(fast=3, slow=12, slow_fraction=0.25)

    @pytest.mark.parametrize("text", ["", "2", "2:6:0.5:9", "a:b",
                                      "2:1", "0:6"])
    def test_bad_windows_raise(self, text):
        with pytest.raises(ValueError):
            BurnWindows.parse(text)

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            BurnWindows(fast=1, slow=2, slow_fraction=0.0)
        with pytest.raises(ValueError):
            BurnWindows(fast=1, slow=2, slow_fraction=1.5)


class TestAlertRule:
    def test_key_and_severity_come_from_the_slo_rule(self):
        rule = _rule("matrix.cells.total > 0 [critical]")
        assert rule.key == "slo:matrix.cells.total > 0"
        assert rule.severity == "critical"

    def test_alert_rules_arms_every_slo_rule(self):
        rules = alert_rules(slo_mod.parse_rules(
            "a >= 1\nb <= 2 [critical]"), for_ticks=3)
        assert [r.for_ticks for r in rules] == [3, 3]
        assert [r.severity for r in rules] == ["warn", "critical"]

    def test_default_alert_slos_are_deterministic_metrics_only(self):
        # Wall clocks, utilization and sampling counters are host
        # noise: a rule over them would break the byte-identical
        # timeline guarantee the alert gate enforces.
        for rule in alerts_mod.DEFAULT_ALERT_SLOS:
            assert "wall" not in rule.metric
            assert "utilization" not in rule.metric
            assert "sampling" not in rule.metric


class TestStateMachine:
    def test_lifecycle_pending_firing_resolved(self):
        engine = AlertEngine(
            rules=[_rule("x >= 1", for_ticks=2)], emit_obs=False)
        engine.observe(_snapshot(x=0))        # violated: pending
        assert [s["state"] for s in engine.pending] == ["pending"]
        engine.observe(_snapshot(x=0))        # 2nd tick: firing
        assert engine.firing and not engine.pending
        engine.observe(_snapshot(x=5))        # healthy: resolved
        assert not engine.firing
        states = [(r["from"], r["to"]) for r in engine.transitions]
        assert states == [("inactive", "pending"),
                          ("pending", "firing"),
                          ("firing", "resolved")]

    def test_damped_cancel_never_fires(self):
        engine = AlertEngine(
            rules=[_rule("x >= 1", for_ticks=3)], emit_obs=False)
        engine.observe(_snapshot(x=0))        # pending
        engine.observe(_snapshot(x=9))        # cleared before 3 ticks
        states = [(r["from"], r["to"]) for r in engine.transitions]
        assert states == [("inactive", "pending"),
                          ("pending", "inactive")]
        assert not engine.firing

    def test_for_ticks_one_fires_same_tick_as_pending(self):
        engine = AlertEngine(
            rules=[_rule("x >= 1", for_ticks=1)], emit_obs=False)
        emitted = engine.observe(_snapshot(x=0))
        assert [r["to"] for r in emitted] == ["pending", "firing"]

    def test_burn_windows_damp_a_single_bad_tick(self):
        # fast=2: one violating tick leaves burn_fast at 0.5 < 1.0,
        # so nothing even goes pending.
        engine = AlertEngine(
            rules=[_rule("x >= 1", fast=2, slow=4)], emit_obs=False)
        engine.observe(_snapshot(x=5))
        engine.observe(_snapshot(x=0))
        assert not engine.pending and not engine.firing
        engine.observe(_snapshot(x=0))        # two in a row: fires
        assert engine.firing

    def test_slow_window_fraction_gates_the_condition(self):
        # fast=1 but slow=4 @ 0.75: three healthy ticks of history
        # keep burn_slow at 0.25 after one violation.
        engine = AlertEngine(
            rules=[AlertRule(slo=slo_mod.parse_rule("x >= 1"),
                             windows=BurnWindows(fast=1, slow=4,
                                                 slow_fraction=0.75),
                             for_ticks=1)],
            emit_obs=False)
        for _ in range(3):
            engine.observe(_snapshot(x=5))
        engine.observe(_snapshot(x=0))
        assert not engine.pending and not engine.firing

    def test_absent_metric_violates_unless_optional(self):
        engine = AlertEngine(
            rules=[_rule("missing.metric > 0"),
                   _rule("optional.metric > 0 ?")],
            emit_obs=False)
        engine.observe(_snapshot())
        assert [s["alert"] for s in engine.firing] \
            == ["slo:missing.metric > 0"]

    def test_refiring_after_resolution(self):
        engine = AlertEngine(
            rules=[_rule("x >= 1", for_ticks=1)], emit_obs=False)
        engine.observe(_snapshot(x=0))
        engine.observe(_snapshot(x=5))
        engine.observe(_snapshot(x=0))
        assert [r["to"] for r in engine.transitions] \
            == ["pending", "firing", "resolved", "pending", "firing"]

    def test_set_condition_external_keys_share_the_machine(self):
        engine = AlertEngine(rules=[], emit_obs=False)
        engine.set_condition("anomaly:f:g", True, severity="critical")
        assert engine.has_critical_firing
        engine.set_condition("anomaly:f:g", False)
        assert not engine.firing
        assert [r["to"] for r in engine.transitions] \
            == ["pending", "firing", "resolved"]

    def test_observe_anomalies_resolves_vanished_keys(self):
        from repro.obs.anomaly import Anomaly

        engine = AlertEngine(rules=[], emit_obs=False)
        spike = Anomaly(feature="sim_seconds", group="g1", value=9.0,
                        median=1.0, mad=0.1, zscore=50.0,
                        severity="critical")
        engine.observe_anomalies([spike])
        assert engine.firing[0]["context"]["zscore"] == 50.0
        engine.observe_anomalies([])           # detector went quiet
        assert not engine.firing

    def test_observe_publishes_gauges(self):
        with obs.capture() as collector:
            engine = AlertEngine(
                rules=[_rule("x >= 1 [critical]", for_ticks=1)])
            engine.observe(_snapshot(x=0))
        gauges = collector.metrics.to_dict()["gauges"]
        assert gauges["alerts.firing"] == 1
        assert gauges["alerts.firing.critical"] == 1
        counters = collector.metrics.to_dict()["counters"]
        assert counters["alerts.transitions"] == 2

    def test_to_dict_shape(self):
        engine = AlertEngine(
            rules=[_rule("x >= 1", for_ticks=1)], emit_obs=False)
        engine.observe(_snapshot(x=0))
        payload = engine.to_dict()
        assert payload["schema"] == alerts_mod.SCHEMA_VERSION
        assert payload["tick"] == 1
        assert payload["transitions"] == 2
        assert payload["firing"][0]["rule"] == "x >= 1"


class TestSinks:
    def test_memory_and_jsonl_sinks_receive_every_transition(
            self, tmp_path):
        path = str(tmp_path / "timeline.jsonl")
        memory = MemorySink()
        engine = AlertEngine(
            rules=[_rule("x >= 1", for_ticks=1)],
            sinks=[memory, JsonlSink(path)], emit_obs=False)
        engine.observe(_snapshot(x=0))
        engine.observe(_snapshot(x=5))
        engine.close()
        assert [r["to"] for r in memory.records] \
            == ["pending", "firing", "resolved"]
        loaded = read_timeline(path)
        assert loaded == memory.records
        assert [r["seq"] for r in loaded] == [1, 2, 3]

    def test_read_timeline_refuses_newer_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"schema": alerts_mod.SCHEMA_VERSION + 1, "to": "firing"})
            + "\n")
        with pytest.raises(ValueError, match="newer"):
            read_timeline(str(path))

    def test_stderr_sink_one_line_per_transition(self):
        import io

        stream = io.StringIO()
        engine = AlertEngine(
            rules=[_rule("x >= 1 [critical]", for_ticks=1)],
            sinks=[StderrSink(stream)], emit_obs=False)
        engine.observe(_snapshot(x=0))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "FIRING" in lines[1] and "[critical]" in lines[1]
        assert "observed=0" in lines[1]


def _wide(outcome="no", fault_kind=None, attempts=1, hits=True):
    return {"site": "fir", "binary": "app", "outcome": outcome,
            "fault_kind": fault_kind, "attempts": attempts,
            "description_hit": hits, "discovery_hit": hits,
            "evaluation_hit": False, "wall_seconds": 0.123}


class TestWideReplay:
    def test_snapshots_fold_cumulative_counts(self):
        records = ([_wide()] * 8
                   + [_wide(outcome="unknown", fault_kind="read-error",
                            attempts=3)] * 2
                   + [_wide()] * 5)
        pairs = list(wide_snapshots(records, batch=10))
        assert len(pairs) == 2                 # 10 + partial 5
        first, second = pairs[0][0], pairs[1][0]
        assert first["gauges"]["matrix.cells.total"] == 10
        assert first["gauges"]["matrix.unknown_cells.pct"] == 20.0
        assert first["gauges"]["resilience.faults.injected"] == 2
        assert first["gauges"]["resilience.retries.total"] == 4
        assert second["gauges"]["matrix.cells.total"] == 15
        assert pairs[1][1]["fault_kinds"] == {"read-error": 2}

    def test_wall_seconds_never_enter_snapshots(self):
        (snapshot, _context), = wide_snapshots([_wide()], batch=1)
        assert not any("wall" in name for name in snapshot["gauges"])

    def test_faulty_stream_fires_with_provenance(self):
        records = [_wide(outcome="unknown", fault_kind="read-error",
                         attempts=2)] * 20
        engine = AlertEngine(emit_obs=False)
        ticks = replay_wide(records, engine, batch=10)
        assert ticks == 2
        assert engine.has_critical_firing
        firing = {s["alert"]: s for s in engine.firing}
        faults = firing["slo:resilience.faults.injected <= 0"]
        assert faults["context"]["fault_kinds"] == {"read-error": 20}

    def test_clean_stream_fires_nothing(self):
        engine = AlertEngine(emit_obs=False)
        replay_wide([_wide()] * 30, engine, batch=10)
        assert not engine.firing and not engine.pending
        assert engine.transitions == []

    def test_same_stream_replays_identically(self):
        records = [_wide(outcome="unknown", fault_kind="read-error",
                         attempts=2)] * 25
        runs = []
        for _ in range(2):
            engine = AlertEngine(emit_obs=False)
            replay_wide(records, engine, batch=10)
            runs.append(engine.transitions)
        assert runs[0] == runs[1]
        assert json.dumps(runs[0], sort_keys=True) \
            == json.dumps(runs[1], sort_keys=True)


class TestLedgerReplay:
    def test_manifests_tick_with_rollup_vocabulary(self):
        runs = [{"run_id": f"r-{i}", "kind": "chaos",
                 "fault_profile": "flaky",
                 "rollup": {"cells": 20, "faults_injected": 9,
                            "retries": 14}}
                for i in range(2)]
        engine = AlertEngine(
            rules=alert_rules(alerts_mod.DEFAULT_LEDGER_SLOS),
            emit_obs=False)
        assert replay_ledger(runs, engine) == 2
        assert engine.has_critical_firing
        assert engine.firing[0]["context"]["run_id"] == "r-1"


class TestRendering:
    def test_render_alerts_tally_and_provenance(self):
        records = [_wide(outcome="unknown", fault_kind="read-error",
                         attempts=2)] * 20
        engine = AlertEngine(emit_obs=False)
        replay_wide(records, engine, batch=10)
        text = render_alerts(engine)
        assert "FIRING" in text
        assert "faults: read-error=20" in text
        assert "2 tick(s)" in text

    def test_render_alerts_quiet_engine(self):
        engine = AlertEngine(emit_obs=False)
        assert render_alerts(engine) \
            == "0 firing (0 critical), 0 pending, 0 transition(s) " \
               "over 0 tick(s)"

    def test_render_timeline(self):
        engine = AlertEngine(
            rules=[_rule("x >= 1", for_ticks=1)], emit_obs=False)
        engine.observe(_snapshot(x=0))
        text = render_timeline(engine.transitions)
        assert "inactive -> pending" in text
        assert "pending -> firing" in text
        assert render_timeline([]) == "(empty timeline)"
