"""The ``feam watch`` renderer: snapshots, deltas, frames, in-place draw.

Everything here runs on synthetic snapshots -- the renderer's contract
is that it only ever sees the :func:`repro.obs.watch.sample` shape, so
attach mode (HTTP ``/snapshot``), drive mode (local collector) and
these tests share one code path.
"""

import io

from repro import obs
from repro.obs.watch import (
    InPlaceRenderer,
    WatchState,
    _breaker_words,
    _rolling_buckets,
    _shard_rates,
    _sparkline,
    render_frame,
    render_line,
    sample,
)


def _snap(cells=100, buckets=None, gauges=None, counters=None,
          histograms=None):
    metrics = {
        "counters": {"cells.evaluated": cells, "obs.wide.emitted": cells,
                     **(counters or {})},
        "gauges": {"engine.matrix.queue_depth": 12,
                   "engine.matrix.steals": 3,
                   "engine.matrix.worker_utilization": 0.85,
                   **(gauges or {})},
        "histograms": histograms or {},
    }
    return {"metrics": metrics, "buckets": buckets or {},
            "spans": 0, "events": 0}


class TestSample:
    def test_shape_matches_the_snapshot_contract(self):
        with obs.capture() as collector:
            obs.counter("cells.evaluated").inc(5)
            obs.histogram("engine.cell.wall_seconds").observe(0.01)
            with obs.span("engine.cell"):
                pass
        snap = sample(collector)
        assert sorted(snap) == ["buckets", "events", "metrics", "spans"]
        assert snap["metrics"]["counters"]["cells.evaluated"] == 5
        assert snap["spans"] == 1
        pairs = snap["buckets"]["engine.cell.wall_seconds"]
        # Cumulative (bound, count) pairs ending at the +Inf bucket.
        assert pairs[-1][0] is None
        assert pairs[-1][1] == 1

    def test_sample_is_json_ready(self):
        import json
        with obs.capture() as collector:
            obs.histogram("engine.cell.wall_seconds").observe(0.01)
        json.dumps(sample(collector))  # must not raise


class TestWatchState:
    def test_advance_returns_the_previous_sample(self):
        state = WatchState()
        first = _snap(cells=10)
        second = _snap(cells=30)
        assert state.advance(first, 1.0) == {}
        assert state.advance(second, 1.0) is first
        assert state.previous is second
        assert state.elapsed == 2.0
        assert state.frames == 2


class TestHelpers:
    def test_breaker_words_folds_state_gauges(self):
        snap = _snap(gauges={
            "resilience.breaker.site-a.state": 0,
            "resilience.breaker.site-b.state": 2,
            "resilience.breaker.site-c.state": 1,
            "resilience.breaker.site-d.state": 2,
        })
        assert _breaker_words(snap) == \
            {"closed": 1, "half-open": 1, "open": 2}

    def test_shard_rates_groups_by_layer_in_index_order(self):
        snap = _snap(gauges={
            "engine.cache.description.shard.10.hit_rate": 0.10,
            "engine.cache.description.shard.2.hit_rate": 0.95,
            "engine.cache.evaluation.shard.0.hit_rate": 0.5,
            "engine.cache.description.hit_rate": 0.9,  # aggregate: skip
        })
        rates = _shard_rates(snap)
        assert list(rates) == ["description", "evaluation"]
        assert rates["description"] == [0.95, 0.10]  # index 2 before 10
        assert rates["evaluation"] == [0.5]

    def test_sparkline_maps_rates_to_the_ascii_ramp(self):
        assert _sparkline([0.0, 1.0]) == " #"
        assert len(_sparkline([0.3] * 16)) == 16
        assert _sparkline([2.0]) == "#"   # clamped
        assert _sparkline([-1.0]) == " "  # clamped

    def test_rolling_buckets_de_cumulates_against_before(self):
        before = _snap(buckets={"engine.cell.wall_seconds": [
            [0.001, 5], [0.01, 10], [None, 10]]})
        snap = _snap(buckets={"engine.cell.wall_seconds": [
            [0.001, 5], [0.01, 18], [None, 20]]})
        rolling = _rolling_buckets(snap, before)
        # This interval: 8 new cells in (0.001, 0.01], 2 above 0.01.
        assert dict(rolling) == {"<=10ms": 8, "<=+Inf": 2}

    def test_rolling_buckets_first_frame_uses_raw_counts(self):
        snap = _snap(buckets={"engine.cell.wall_seconds": [
            [0.001, 3], [None, 3]]})
        assert dict(_rolling_buckets(snap, {})) == {"<=1ms": 3}

    def test_rolling_buckets_keeps_only_densest_rows(self):
        pairs, cumulative = [], 0
        for index in range(10):
            cumulative += index + 1
            pairs.append([float(index + 1), cumulative])
        snap = _snap(buckets={"engine.cell.wall_seconds": pairs})
        assert len(_rolling_buckets(snap, {}, rows=5)) == 5

    def test_rolling_buckets_absent_histogram(self):
        assert _rolling_buckets(_snap(), {}) == []


class TestRenderFrame:
    def test_frame_contents(self):
        before = _snap(cells=40)
        snap = _snap(
            cells=100,
            gauges={"engine.cache.description.hit_rate": 0.91,
                    "engine.cache.description.shard.0.hit_rate": 0.8,
                    "resilience.breaker.site-a.state": 2},
            counters={"obs.sampling.kept": 4,
                      "obs.sampling.dropped": 96},
            histograms={"engine.cell.wall_seconds": {
                "count": 100, "p50": 0.002, "p95": 0.009, "max": 1.2}})
        frame = render_frame(snap, before, interval=2.0, elapsed=10.0,
                             total_cells=400)
        assert frame.startswith("feam watch  t+  10.0s   cells 100/400")
        assert "30.0 cells/s" in frame       # (100-40)/2.0
        assert "queue=12" in frame
        assert "utilization=0.85" in frame
        assert "description=0.91" in frame
        assert "shards   description" in frame
        assert "open=1" in frame
        assert "wide=100" in frame and "kept=4" in frame
        assert "p50=2.0ms" in frame and "max=1.20s" in frame
        assert "\x1b" not in frame           # no control codes in frames

    def test_frame_without_optional_sections_stays_small(self):
        frame = render_frame(_snap(), {}, interval=1.0, elapsed=0.0)
        assert "breakers" not in frame
        assert "latency" not in frame
        assert "shards" not in frame
        assert "alerts" not in frame         # no alert gauges yet

    def test_alerts_panel_shows_firing_and_pending(self):
        snap = _snap(gauges={"alerts.firing": 2,
                             "alerts.firing.critical": 1,
                             "alerts.pending": 3})
        frame = render_frame(snap, {}, interval=1.0, elapsed=0.0)
        assert "alerts   firing=2 (1 critical)  pending=3" in frame

    def test_alerts_panel_appears_once_gauges_exist(self):
        # A quiet engine still publishes zeros: the panel renders so
        # the operator sees alerting is armed, not absent.
        snap = _snap(gauges={"alerts.firing": 0, "alerts.pending": 0})
        frame = render_frame(snap, {}, interval=1.0, elapsed=0.0)
        assert "alerts   firing=0 (0 critical)  pending=0" in frame


class TestRenderLine:
    def test_plain_line_for_non_tty(self):
        before = _snap(cells=0)
        snap = _snap(cells=50, gauges={
            "resilience.breaker.site-a.state": 2,
            "resilience.breaker.site-b.state": 1})
        line = render_line(snap, before, interval=1.0, elapsed=3.0,
                           total_cells=200)
        assert line == ("t+3.0s cells=50/200 rate=50.0/s queue=12 "
                        "breakers_open=2 wide=50")
        assert "\x1b" not in line
        assert "\n" not in line


class TestInPlaceRenderer:
    def test_first_frame_prints_without_cursor_movement(self):
        stream = io.StringIO()
        InPlaceRenderer(stream).draw("one\ntwo")
        text = stream.getvalue()
        import re
        assert "\x1b[2Kone\n" in text and "\x1b[2Ktwo\n" in text
        assert not re.search(r"\x1b\[\d+A", text)  # no cursor-up yet

    def test_second_frame_moves_up_over_the_first(self):
        stream = io.StringIO()
        renderer = InPlaceRenderer(stream)
        renderer.draw("one\ntwo\nthree")
        renderer.draw("uno\ndos\ntres")
        assert "\x1b[3A" in stream.getvalue()

    def test_shrinking_frame_erases_stale_lines(self):
        stream = io.StringIO()
        renderer = InPlaceRenderer(stream)
        renderer.draw("one\ntwo\nthree")
        renderer.draw("short")
        text = stream.getvalue()
        # Two leftover lines get erased, then the cursor backs up.
        assert text.count("\x1b[2K\n") == 2
        assert "\x1b[2A" in text
        renderer.draw("grows\nagain\nnow")
        assert "\x1b[1A" in stream.getvalue()  # tracked the shrunk height
